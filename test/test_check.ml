(* The checking layers: named pass pipeline, schedule legality checker,
   differential oracle, generator shrinking, and the fuzz driver.

   The injected-defect tests are the important ones: they prove the
   oracle and the legality checker actually catch miscompiles, by
   manufacturing the two classic ones — an optimizer that drops a live
   store, and a scheduler that swaps RAW-dependent instructions — and
   watching them get flagged. *)

open Ilp_ir
open Ilp_machine
module Ilp = Ilp_core.Ilp
module Diffcheck = Ilp_core.Diffcheck
module Check_sched = Ilp_sched.Check_sched
module Gen_prog = Ilp_lang.Gen_prog

let r = Reg.phys

let src =
  {|
var g : int = 3;
arr a : int[16];
fun main() {
  var i : int = 0;
  var s : int = 0;
  for (i = 0; i < 12; i = i + 1) {
    a[i & 15] = i * g;
    s = s + a[(i + 2) & 15];
  }
  g = s % 97;
  sink(s + g);
}
|}

(* --- the named pass pipeline ------------------------------------------- *)

let pipeline_names level =
  List.map
    (fun p -> p.Ilp.pass_name)
    (Ilp.pipeline ~level Presets.base)

let test_pipeline_names () =
  Alcotest.(check (list string)) "O0 allocates temps and nothing else"
    [ "temp_alloc" ] (pipeline_names Ilp.O0);
  Alcotest.(check (list string)) "O2 adds the local cleanup group"
    [ "const_fold"; "local_cse"; "dce"; "temp_alloc" ]
    (pipeline_names Ilp.O2);
  Alcotest.(check (list string)) "O4 is the full historical sequence"
    [ "const_fold"; "local_cse"; "dce";
      "licm"; "global_cse";
      "post_global.const_fold"; "post_global.local_cse"; "post_global.dce";
      "global_alloc";
      "post_alloc.const_fold"; "post_alloc.local_cse"; "post_alloc.dce";
      "coalesce"; "temp_alloc" ]
    (pipeline_names Ilp.O4)

(* Folding the pipeline by hand must reproduce compile_unscheduled.
   Fresh vreg/label counters are global, so two compiles of the same
   source are only isomorphic, not textually equal — compare shape
   (instruction count) and exact dynamic behaviour instead. *)
let test_pipeline_reproduces_compile () =
  let config = Presets.base in
  let by_fold =
    List.fold_left
      (fun p pass -> pass.Ilp.pass_run p)
      (Ilp_lang.Codegen.gen_program (Ilp.frontend src))
      (Ilp.pipeline ~level:Ilp.O4 config)
  in
  let direct = Ilp.compile_unscheduled ~level:Ilp.O4 config src in
  Alcotest.(check int) "same instruction count"
    (Program.instr_count direct) (Program.instr_count by_fold);
  Diffcheck.compare_exact ~stage:"pipeline fold"
    ~reference:(Diffcheck.observe direct)
    (Diffcheck.observe by_fold)

let test_on_pass_order () =
  let seen = ref [] in
  let on_pass name _stage _p = seen := name :: !seen in
  ignore (Ilp.compile ~check:true ~on_pass ~level:Ilp.O4 Presets.base src);
  let seen = List.rev !seen in
  Alcotest.(check (list string)) "codegen first, scheduling last"
    (("codegen" :: pipeline_names Ilp.O4) @ [ "list_sched" ])
    seen

(* --- schedule legality ------------------------------------------------- *)

let block_of instrs = Block.make (Label.of_string "b") instrs

let test_legality_catches_raw_swap () =
  let producer = Builder.li (r 1) 1 in
  let consumer = Builder.add (r 2) (r 1) (r 1) in
  let original = block_of [ producer; consumer ] in
  let swapped = block_of [ consumer; producer ] in
  match
    Check_sched.check_block Presets.base ~original ~scheduled:swapped
  with
  | () -> Alcotest.fail "RAW-violating swap not flagged"
  | exception Check_sched.Illegal _ -> ()

let test_legality_catches_drop_and_duplicate () =
  let a = Builder.li (r 1) 1 in
  let b = Builder.li (r 2) 2 in
  let original = block_of [ a; b ] in
  (match
     Check_sched.check_block Presets.base ~original
       ~scheduled:(block_of [ a ])
   with
  | () -> Alcotest.fail "dropped instruction not flagged"
  | exception Check_sched.Illegal _ -> ());
  match
    Check_sched.check_block Presets.base ~original
      ~scheduled:(block_of [ a; a ])
  with
  | () -> Alcotest.fail "duplicated instruction not flagged"
  | exception Check_sched.Illegal _ -> ()

let test_legality_accepts_independent_swap () =
  let a = Builder.li (r 1) 1 in
  let b = Builder.li (r 2) 2 in
  Check_sched.check_block Presets.base
    ~original:(block_of [ a; b ])
    ~scheduled:(block_of [ b; a ])

(* The real scheduler always satisfies its own checker. *)
let test_legality_accepts_real_scheduler () =
  List.iter
    (fun config ->
      let pre = Ilp.compile_unscheduled ~level:Ilp.O4 config src in
      let scheduled = Ilp_sched.List_sched.run config pre in
      Check_sched.check_program config ~original:pre ~scheduled)
    [ Presets.base; Presets.superscalar 4;
      Presets.superscalar_with_class_conflicts 4; Presets.cray1 () ]

(* --- differential oracle ----------------------------------------------- *)

let test_diffcheck_clean () =
  List.iter
    (fun level ->
      ignore
        (Diffcheck.check_compile ~granularity:`Every_pass ~level Presets.base
           src))
    Ilp.all_levels

let test_diffcheck_clean_unroll () =
  ignore
    (Diffcheck.check_compile
       ~unroll:{ Ilp.mode = Ilp_lang.Unroll.Careful; factor = 4; bounds = false }
       ~level:Ilp.O4 Presets.base src)

(* A broken DCE that drops a live (here: the sink) store must be caught
   by the oracle.  The "pass" is manufactured by deleting the last
   store of the compiled program. *)
let drop_last_store (p : Program.t) =
  let stores =
    List.concat_map
      (fun (f : Func.t) ->
        List.concat_map
          (fun (b : Block.t) -> List.filter Instr.is_store b.Block.instrs)
          f.Func.blocks)
      p.Program.functions
  in
  let doomed = (List.nth stores (List.length stores - 1)).Instr.id in
  Program.map_functions
    (Func.map_blocks (fun b ->
         Block.make b.Block.label
           (List.filter (fun i -> i.Instr.id <> doomed) b.Block.instrs)))
    p

let test_oracle_catches_dropped_store () =
  let p = Ilp.compile_unscheduled ~level:Ilp.O4 Presets.base src in
  let broken = drop_last_store p in
  let reference = Diffcheck.observe p in
  match
    Diffcheck.compare_semantics ~stage:"broken_dce" ~reference
      (Diffcheck.observe broken)
  with
  | () -> Alcotest.fail "dropped live store not flagged"
  | exception Diffcheck.Mismatch { stage; _ } ->
      Alcotest.(check string) "offender named" "broken_dce" stage

(* The exact (schedule) comparison must also notice a dropped store even
   when it misses the sink cell. *)
let test_exact_catches_any_dropped_store () =
  let p = Ilp.compile_unscheduled ~level:Ilp.O2 Presets.base src in
  let broken = drop_last_store p in
  match
    Diffcheck.compare_exact ~stage:"bad_sched" ~reference:(Diffcheck.observe p)
      (Diffcheck.observe broken)
  with
  | () -> Alcotest.fail "behaviour change not flagged"
  | exception Diffcheck.Mismatch _ -> ()

(* --- generator shrinking ------------------------------------------------ *)

let rec stmt_has_arr_write = function
  | Gen_prog.Arr_write _ -> true
  | Gen_prog.Assign _ | Gen_prog.Self_assign _ -> false
  | Gen_prog.If (_, a, b) ->
      List.exists stmt_has_arr_write a || List.exists stmt_has_arr_write b
  | Gen_prog.For (_, _, body) -> List.exists stmt_has_arr_write body

let has_arr_write (p : Gen_prog.prog) =
  List.exists stmt_has_arr_write p.Gen_prog.stmts

let test_shrink_minimises () =
  (* find a seed whose program contains an array write, then shrink with
     "contains an array write" as the failure predicate *)
  let rec find k =
    let st = Random.State.make [| 33; k |] in
    let p = Gen_prog.generate st in
    if has_arr_write p then p else find (k + 1)
  in
  let p = find 0 in
  let shrunk = Gen_prog.shrink ~still_fails:has_arr_write p in
  Alcotest.(check bool) "still fails" true (has_arr_write shrunk);
  (* local minimum under the shrinker's own acceptance rule: no
     strictly smaller candidate still fails *)
  Alcotest.(check bool) "local minimum" true
    (Seq.for_all
       (fun c ->
         Gen_prog.size c >= Gen_prog.size shrunk || not (has_arr_write c))
       (Gen_prog.shrink_step shrunk));
  Alcotest.(check int) "one statement left" 1
    (List.length shrunk.Gen_prog.stmts);
  (* the shrunk program is still a valid MiniMod program *)
  ignore (Ilp.frontend (Gen_prog.render shrunk))

let test_generated_programs_compile () =
  for k = 0 to 9 do
    let st = Random.State.make [| 99; k |] in
    let source = Gen_prog.render (Gen_prog.generate st) in
    ignore (Ilp.compile ~level:Ilp.O4 Presets.base source)
  done

(* --- fuzz driver -------------------------------------------------------- *)

let test_fuzz_smoke () = Ilp_core.Fuzz.run ~count:4 ~seed:7 ()

let test_fuzz_parallel_smoke () =
  Ilp_core.Fuzz.run ~jobs:2 ~count:4 ~seed:7 ()

(* --- checked sweeps ------------------------------------------------------ *)

(* A checked sweep returns the same numbers as an unchecked one. *)
let test_checked_sweep_identical () =
  let w =
    match Ilp_workloads.Registry.find "whet" with
    | Some w -> w
    | None -> Alcotest.fail "no whet"
  in
  let configs = [ Presets.base; Presets.superscalar 4 ] in
  let plain = Ilp_core.Experiments.measure_workload_many w configs in
  let checked =
    Ilp_core.Experiments.with_checks true (fun () ->
        Ilp_core.Experiments.measure_workload_many w configs)
  in
  List.iter2
    (fun (a : Ilp_sim.Metrics.run) (b : Ilp_sim.Metrics.run) ->
      Helpers.check_float "same cycles" a.Ilp_sim.Metrics.base_cycles
        b.Ilp_sim.Metrics.base_cycles;
      Alcotest.check Helpers.value_testable "same sink" a.Ilp_sim.Metrics.sink
        b.Ilp_sim.Metrics.sink)
    plain checked

let tests =
  [ Alcotest.test_case "pipeline names" `Quick test_pipeline_names;
    Alcotest.test_case "pipeline reproduces compile" `Quick
      test_pipeline_reproduces_compile;
    Alcotest.test_case "on_pass order" `Quick test_on_pass_order;
    Alcotest.test_case "legality: RAW swap caught" `Quick
      test_legality_catches_raw_swap;
    Alcotest.test_case "legality: drop/duplicate caught" `Quick
      test_legality_catches_drop_and_duplicate;
    Alcotest.test_case "legality: independent swap ok" `Quick
      test_legality_accepts_independent_swap;
    Alcotest.test_case "legality: real scheduler ok" `Quick
      test_legality_accepts_real_scheduler;
    Alcotest.test_case "oracle: clean at every level" `Quick
      test_diffcheck_clean;
    Alcotest.test_case "oracle: clean under unrolling" `Quick
      test_diffcheck_clean_unroll;
    Alcotest.test_case "oracle: dropped live store caught" `Quick
      test_oracle_catches_dropped_store;
    Alcotest.test_case "oracle: exact compare catches store loss" `Quick
      test_exact_catches_any_dropped_store;
    Alcotest.test_case "shrink reaches a local minimum" `Quick
      test_shrink_minimises;
    Alcotest.test_case "generated programs compile" `Quick
      test_generated_programs_compile;
    Alcotest.test_case "fuzz smoke" `Slow test_fuzz_smoke;
    Alcotest.test_case "fuzz smoke, 2 domains" `Slow test_fuzz_parallel_smoke;
    Alcotest.test_case "checked sweep is bit-identical" `Slow
      test_checked_sweep_identical ]
