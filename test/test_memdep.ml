(* Static memory-dependence analysis (Ilp_analysis.Memdep) and its
   integration into DDG construction.

   Unit tests drive [classify_block] on hand-built instruction lists
   where none of the accesses carry a region annotation, so every
   [No_alias]/[Must_alias] verdict below is earned by the symbolic
   linear-term analysis, not by [Mem_info.disjoint].  The property test
   checks the global soundness contract: the disambiguated DDG of any
   block is an edge-subgraph of the conservative DDG.  The workload
   tests run the full pipeline — [Diffcheck.check_compile ~memdep:true]
   re-justifies every pruned edge statically (Check_sched) and compares
   per-address store streams dynamically. *)

open Ilp_ir
open Ilp_machine
module Memdep = Ilp_analysis.Memdep
module Ddg = Ilp_sched.Ddg

let r = Reg.phys

let alias_t =
  Alcotest.testable Memdep.pp_alias Memdep.equal_alias

let check_alias msg expected instrs a b =
  Alcotest.check alias_t msg expected (Memdep.classify_block instrs a b)

(* --- classify_block units --------------------------------------------- *)

(* Same (unannotated) base register, distinct constant offsets. *)
let test_const_offsets () =
  let st0 = Builder.st ~value:(r 1) ~base:(r 2) ~offset:0 () in
  let ld1 = Builder.ld (r 3) ~base:(r 2) ~offset:1 in
  let ld0 = Builder.ld (r 4) ~base:(r 2) ~offset:0 in
  let instrs = [ st0; ld1; ld0 ] in
  check_alias "0(r2) vs 1(r2)" Memdep.No_alias instrs st0 ld1;
  check_alias "0(r2) vs 0(r2)" Memdep.Must_alias instrs st0 ld0

(* The smooth-kernel shape: the neighbour index flows through a separate
   register ([addi r4 <- r2, 1]), so the two stores use different base
   registers that the linear terms relate exactly. *)
let test_linear_chain () =
  let a = Builder.addi (r 4) (r 2) 1 in
  let st_k = Builder.st ~value:(r 1) ~base:(r 2) ~offset:0 () in
  let st_kn = Builder.st ~value:(r 1) ~base:(r 4) ~offset:0 () in
  let st_kn_back = Builder.st ~value:(r 1) ~base:(r 4) ~offset:(-1) () in
  let instrs = [ a; st_k; st_kn; st_kn_back ] in
  check_alias "0(r2) vs 0(r2+1)" Memdep.No_alias instrs st_k st_kn;
  check_alias "0(r2) vs -1(r2+1)" Memdep.Must_alias instrs st_k st_kn_back

(* Value numbering: two syntactically different computations of the same
   address must coincide, including commuted operands. *)
let test_value_numbering () =
  let a1 = Builder.add (r 4) (r 2) (r 3) in
  let a2 = Builder.add (r 5) (r 3) (r 2) in
  let st1 = Builder.st ~value:(r 1) ~base:(r 4) ~offset:0 () in
  let st2 = Builder.st ~value:(r 1) ~base:(r 5) ~offset:0 () in
  let st3 = Builder.st ~value:(r 1) ~base:(r 5) ~offset:1 () in
  let instrs = [ a1; a2; st1; st2; st3 ] in
  check_alias "r2+r3 vs r3+r2" Memdep.Must_alias instrs st1 st2;
  check_alias "r2+r3 vs (r3+r2)+1" Memdep.No_alias instrs st1 st3

(* A base built by an opaque reg*reg multiply relates to itself but not
   to an unrelated register: the analysis must stay conservative. *)
let test_opaque_base () =
  let m = Builder.mul (r 4) (r 2) (r 3) in
  let st_m = Builder.st ~value:(r 1) ~base:(r 4) ~offset:0 () in
  let st_2 = Builder.st ~value:(r 1) ~base:(r 2) ~offset:0 () in
  let instrs = [ m; st_m; st_2 ] in
  check_alias "r2*r3 vs r2" Memdep.May_alias instrs st_m st_2

(* Calls clobber everything the analysis knows about memory and
   registers: an access after a call must not be proven disjoint from
   one before it just because both use the same base register. *)
let test_call_barrier () =
  let st_pre = Builder.st ~value:(r 1) ~base:(r 2) ~offset:0 () in
  let c = Builder.call (Label.of_string "f") in
  let ld_post = Builder.ld (r 3) ~base:(r 2) ~offset:1 in
  let instrs = [ st_pre; c; ld_post ] in
  match Memdep.classify_block instrs st_pre ld_post with
  | Memdep.No_alias ->
      Alcotest.fail "accesses across a call must not be proven disjoint"
  | Memdep.Must_alias | Memdep.May_alias -> ()

(* --- DDG integration -------------------------------------------------- *)

(* The classifier drops exactly the serialization edge between provably
   disjoint stores, leaves register edges alone, and counts the prune. *)
let test_ddg_pruning () =
  let a = Builder.addi (r 4) (r 2) 1 in
  let st1 = Builder.st ~value:(r 1) ~base:(r 2) ~offset:0 () in
  let st2 = Builder.st ~value:(r 1) ~base:(r 4) ~offset:0 () in
  let instrs = [ a; st1; st2 ] in
  let conservative = Ddg.build Presets.base instrs in
  Alcotest.(check bool)
    "conservative graph serializes the stores" true
    (Ddg.edge_kinds conservative ~src:1 ~dst:2 land Ddg.kind_mem <> 0);
  let pruned =
    Ddg.build ~classify:(Memdep.classify_block instrs) Presets.base instrs
  in
  Alcotest.(check int) "one pruned pair" 1 pruned.Ddg.n_pruned;
  Alcotest.(check int) "no store-store edge left" 0
    (Ddg.edge_kinds pruned ~src:1 ~dst:2);
  Alcotest.(check bool)
    "the RAW edge addi -> st survives" true
    (Ddg.edge_kinds pruned ~src:0 ~dst:2 land Ddg.kind_reg <> 0)

(* Must-alias pairs keep their edge even under the classifier. *)
let test_ddg_keeps_must_alias () =
  let st1 = Builder.st ~value:(r 1) ~base:(r 2) ~offset:0 () in
  let st2 = Builder.st ~value:(r 3) ~base:(r 2) ~offset:0 () in
  let instrs = [ st1; st2 ] in
  let ddg =
    Ddg.build ~classify:(Memdep.classify_block instrs) Presets.base instrs
  in
  Alcotest.(check int) "nothing pruned" 0 ddg.Ddg.n_pruned;
  Alcotest.(check bool)
    "same-address stores stay ordered" true
    (Ddg.edge_kinds ddg ~src:0 ~dst:1 land Ddg.kind_mem <> 0)

(* --- property: disambiguation only removes edges ---------------------- *)

let alias_heavy_program : string QCheck2.Gen.t =
  QCheck2.Gen.map Ilp_lang.Gen_prog.render
    (QCheck2.Gen.make_primitive
       ~gen:(Ilp_lang.Gen_prog.generate ~mode:`Alias_heavy)
       ~shrink:Ilp_lang.Gen_prog.shrink_step)

(* For every block of every function of a compiled aliasing-adversarial
   program, every edge of the disambiguated DDG already exists in the
   conservative DDG (with at least the same kind bits): the classifier
   can only remove serialization, never reorder anything else. *)
let prop_subgraph =
  QCheck2.Test.make ~count:30
    ~name:"memdep: disambiguated DDG is an edge-subgraph of conservative"
    ~print:(fun s -> s)
    alias_heavy_program
    (fun src ->
      let config = Presets.superscalar 4 in
      let program =
        Ilp_core.Ilp.compile_unscheduled ~level:Ilp_core.Ilp.O4 config src
      in
      List.for_all
        (fun (f : Func.t) ->
          let md = Memdep.analyze f in
          List.for_all
            (fun (b : Block.t) ->
              let instrs = b.Block.instrs in
              let conservative = Ddg.build config instrs in
              let disambiguated =
                Ddg.build
                  ~classify:(Memdep.classifier md b.Block.label)
                  config instrs
              in
              let n = Array.length conservative.Ddg.instrs in
              let subgraph = ref true in
              for src_i = 0 to n - 1 do
                for dst = 0 to n - 1 do
                  let dk = Ddg.edge_kinds disambiguated ~src:src_i ~dst in
                  let ck = Ddg.edge_kinds conservative ~src:src_i ~dst in
                  if dk land lnot ck <> 0 then subgraph := false
                done
              done;
              !subgraph
              && disambiguated.Ddg.n_edges <= conservative.Ddg.n_edges)
            f.Func.blocks)
        program.Program.functions)

(* --- full-pipeline soundness over the workloads ----------------------- *)

(* Every workload on several machine shapes: the disambiguated schedule
   must survive Check_sched's edge re-justification AND the per-address
   store-stream comparison against the unscheduled program. *)
let test_workloads_sound () =
  let configs =
    [ Presets.base; Presets.superscalar 4; Presets.cray1 () ]
  in
  let workloads =
    Ilp_workloads.Registry.all @ Ilp_workloads.Registry.extras
  in
  List.iter
    (fun config ->
      List.iter
        (fun w ->
          let unroll, source = Ilp_core.Experiments.workload_source w in
          ignore
            (Ilp_core.Diffcheck.check_compile ?unroll ~memdep:true
               ~level:Ilp_core.Ilp.O4 config source))
        workloads)
    configs

(* --- the measurable win ----------------------------------------------- *)

(* smooth is built to sit exactly on the precision boundary: the
   conservative region analysis cannot relate x[k] and x[kn] once kn
   flows through a scalar, the linear terms can.  Disambiguation must
   buy strictly higher scheduled ILP at the same checksum. *)
let test_smooth_improves () =
  let w =
    match Ilp_workloads.Registry.find "smooth" with
    | Some w -> w
    | None -> Alcotest.fail "smooth workload not registered"
  in
  let unroll, source = Ilp_core.Experiments.workload_source w in
  let config = Presets.superscalar 4 in
  let conservative =
    Ilp_core.Ilp.measure ?unroll ~level:Ilp_core.Ilp.O4 config source
  in
  let disambiguated =
    Ilp_core.Ilp.measure ?unroll ~memdep:true ~level:Ilp_core.Ilp.O4 config
      source
  in
  Alcotest.(check bool)
    "strictly higher scheduled ILP" true
    (disambiguated.Ilp_sim.Metrics.speedup
    > conservative.Ilp_sim.Metrics.speedup);
  Alcotest.check Helpers.value_testable "identical checksum"
    conservative.Ilp_sim.Metrics.sink disambiguated.Ilp_sim.Metrics.sink

(* The lint statistics must witness pruning beyond the region analysis
   on smooth's kernel function. *)
let test_smooth_stats () =
  let w =
    match Ilp_workloads.Registry.find "smooth" with
    | Some w -> w
    | None -> Alcotest.fail "smooth workload not registered"
  in
  let unroll, source = Ilp_core.Experiments.workload_source w in
  let program =
    Ilp_core.Ilp.compile_unscheduled ?unroll ~level:Ilp_core.Ilp.O4
      Presets.base source
  in
  let f =
    match Program.find_function program "smooth" with
    | Some f -> f
    | None -> Alcotest.fail "compiled program lost the smooth function"
  in
  let md = Memdep.analyze f in
  let stats = Memdep.func_stats md f in
  Alcotest.(check bool) "some ordered memory pairs" true (stats.Memdep.pairs > 0);
  Alcotest.(check bool) "some proven no-alias" true (stats.Memdep.no_alias > 0);
  Alcotest.(check bool)
    "pruned beyond the region analysis" true (stats.Memdep.pruned > 0)

let tests =
  [ Alcotest.test_case "classify: constant offsets" `Quick test_const_offsets;
    Alcotest.test_case "classify: linear index chain" `Quick test_linear_chain;
    Alcotest.test_case "classify: value numbering" `Quick test_value_numbering;
    Alcotest.test_case "classify: opaque base" `Quick test_opaque_base;
    Alcotest.test_case "classify: call barrier" `Quick test_call_barrier;
    Alcotest.test_case "ddg: prunes proven-disjoint stores" `Quick
      test_ddg_pruning;
    Alcotest.test_case "ddg: keeps must-alias edges" `Quick
      test_ddg_keeps_must_alias;
    QCheck_alcotest.to_alcotest prop_subgraph;
    Alcotest.test_case "workloads: memdep schedules are sound" `Slow
      test_workloads_sound;
    Alcotest.test_case "smooth: disambiguation strictly improves ILP" `Quick
      test_smooth_improves;
    Alcotest.test_case "smooth: pruning statistics" `Quick test_smooth_stats ]
