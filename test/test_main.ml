(* Test runner. *)

let () =
  Alcotest.run "ilp"
    [ ("ir", Test_ir.tests);
      ("machine", Test_machine.tests);
      ("lang", Test_lang.tests);
      ("exec", Test_exec.tests);
      ("timing", Test_timing.tests);
      ("sched", Test_sched.tests);
      ("opt", Test_opt.tests);
      ("regalloc", Test_regalloc.tests);
      ("unroll", Test_unroll.tests);
      ("workloads", Test_workloads.tests);
      ("core", Test_core.tests);
      ("extensions", Test_extensions.tests);
      ("validate", Test_validate.tests);
      ("replay", Test_replay.tests);
      ("store", Test_store.tests);
      ("par", Test_par.tests);
      ("analysis", Test_analysis.tests);
      ("dataflow", Test_dataflow.tests);
      ("check", Test_check.tests);
      ("memdep", Test_memdep.tests);
      ("range", Test_range.tests);
      ("properties", Test_properties.tests) ]
