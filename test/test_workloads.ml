(* Benchmark-suite tests: every workload compiles, runs, and leaves its
   golden checksum at every optimization level and on representative
   machine configurations — a whole-compiler semantic regression net. *)

open Ilp_machine
module W = Ilp_workloads.Workload

let check_expected name (expected : W.expected option) (v : Ilp_sim.Value.t) =
  match (expected, v) with
  | Some (W.Exp_int e), Ilp_sim.Value.Int g ->
      if e <> g then Alcotest.failf "%s: checksum %d, expected %d" name g e
  | Some (W.Exp_float e), Ilp_sim.Value.Float g ->
      Helpers.check_float_rel ~tol:1e-9 name e g
  | Some _, _ -> Alcotest.failf "%s: checksum type mismatch" name
  | None, _ -> ()

let test_registry () =
  Alcotest.(check int) "eight benchmarks" 8
    (List.length Ilp_workloads.Registry.all);
  Alcotest.(check (list string)) "paper's names"
    [ "ccom"; "grr"; "linpack"; "livermore"; "met"; "stanford"; "whet"; "yacc" ]
    Ilp_workloads.Registry.names;
  Alcotest.(check int) "three numeric" 3
    (List.length Ilp_workloads.Registry.numeric);
  Alcotest.(check bool) "find works" true
    (Ilp_workloads.Registry.find "yacc" <> None);
  Alcotest.(check bool) "find rejects" true
    (Ilp_workloads.Registry.find "doom" = None)

let golden_tests =
  List.concat_map
    (fun w ->
      List.map
        (fun level ->
          Alcotest.test_case
            (Printf.sprintf "%s @ %s" w.W.name (Ilp_core.Ilp.opt_level_name level))
            `Slow
            (fun () ->
              let v = Helpers.sink_of ~level w.W.source in
              check_expected w.W.name w.W.expected_sink v))
        Ilp_core.Ilp.all_levels)
    Ilp_workloads.Registry.all

(* Checksums must also survive machine-specific scheduling. *)
let machine_tests =
  let machines =
    [ Presets.superscalar 4; Presets.superpipelined 4; Presets.multititan;
      Presets.cray1 (); Presets.superscalar_with_class_conflicts 2 ]
  in
  List.concat_map
    (fun w ->
      List.map
        (fun config ->
          Alcotest.test_case
            (Printf.sprintf "%s on %s" w.W.name config.Config.name)
            `Slow
            (fun () ->
              let v = Helpers.sink_of ~config w.W.source in
              check_expected w.W.name w.W.expected_sink v))
        machines)
    Ilp_workloads.Registry.all

(* The careful linpack variant must compute exactly the same answer. *)
let test_linpack_careful_variant () =
  let w = Option.get (Ilp_workloads.Registry.find "linpack") in
  let careful = W.source_for_mode w `Careful in
  Alcotest.(check bool) "careful source differs" true
    (careful <> w.W.source);
  let v = Helpers.sink_of careful in
  check_expected "linpack careful" w.W.expected_sink v

let test_unrolled_workloads () =
  List.iter
    (fun name ->
      let w = Option.get (Ilp_workloads.Registry.find name) in
      let v =
        Helpers.sink_of
          ~unroll:
            { Ilp_core.Ilp.mode = Ilp_lang.Unroll.Naive; factor = 4;
              bounds = false }
          w.W.source
      in
      check_expected (name ^ " naive 4x") w.W.expected_sink v)
    [ "linpack"; "stanford"; "yacc" ]

let tests =
  [ Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "linpack careful variant" `Slow test_linpack_careful_variant;
    Alcotest.test_case "unrolled workloads" `Slow test_unrolled_workloads ]
  @ golden_tests @ machine_tests
