(* Timing-model tests: issue width, operation latencies, WAW ordering,
   functional-unit conflicts, superpipelined accounting, and the cache. *)

open Ilp_ir
open Ilp_machine
module Timing = Ilp_sim.Timing

let r = Reg.phys

let cycles_of config instrs =
  let t = Timing.create config in
  List.iter (fun i -> Timing.issue t i (-1)) instrs;
  Timing.minor_cycles t

let issue_cycles config instrs =
  (* minor cycle at which each instruction issues *)
  let t = Timing.create config in
  List.map
    (fun i ->
      Timing.issue t i (-1);
      t.Timing.now)
    instrs

let independent n = Ilp_sim.Diagram.independent_instrs n
let chain n = Ilp_sim.Diagram.dependent_instrs n

let test_base_throughput () =
  (* base machine: one instruction per cycle, chains cost the same *)
  Alcotest.(check int) "6 independent" 6 (cycles_of Presets.base (independent 6));
  Alcotest.(check int) "6 chained" 6 (cycles_of Presets.base (chain 6))

let test_superscalar_width () =
  let c = Presets.superscalar 3 in
  Alcotest.(check (list int)) "3 per cycle"
    [ 0; 0; 0; 1; 1; 1 ]
    (issue_cycles c (independent 6));
  (* a chain cannot use the width *)
  Alcotest.(check (list int)) "chain serializes"
    [ 0; 1; 2; 3 ]
    (issue_cycles c (chain 4))

let test_superpipelined_latency () =
  let c = Presets.superpipelined 3 in
  (* issue one per minor cycle, but results take 3 minor cycles *)
  Alcotest.(check (list int)) "independent flow"
    [ 0; 1; 2; 3 ]
    (issue_cycles c (independent 4));
  Alcotest.(check (list int)) "chain stalls for latency"
    [ 0; 3; 6; 9 ]
    (issue_cycles c (chain 4));
  (* reported in base cycles: last issue at minor 5, drain to minor 8 *)
  let t = Timing.create c in
  List.iter (fun i -> Timing.issue t i (-1)) (independent 6);
  Helpers.check_float "base cycles = minor / m" (8.0 /. 3.0)
    (Timing.base_cycles t)

let test_waw_orders_completions () =
  (* two writes to the same register: the second must not complete
     before the first (long-latency first write) *)
  let c =
    Config.make "waw"
      ~latencies:(Config.latency_table [ (Iclass.Fp_mul, 5) ])
  in
  let i1 = Instr.make Opcode.Fmul ~dst:(r 9) ~srcs:[ Instr.Oreg (r 1); Instr.Oreg (r 2) ] in
  let i2 = Instr.make Opcode.Mov ~dst:(r 9) ~srcs:[ Instr.Oreg (r 3) ] in
  Alcotest.(check (list int)) "mov stalls for WAW"
    [ 0; 4 ]
    (issue_cycles c [ i1; i2 ])

let test_unit_conflicts () =
  (* underpipelined: the single memory unit accepts one op per 2 cycles *)
  let c = Presets.underpipelined in
  let loads =
    List.init 3 (fun k ->
        Instr.make Opcode.Ld ~dst:(r (10 + k)) ~srcs:[ Instr.Oreg Reg.sp ] ~offset:k)
  in
  Alcotest.(check (list int)) "loads every other cycle"
    [ 0; 2; 4 ]
    (issue_cycles c loads)

let test_multiplicity () =
  let c =
    Config.make "two-units" ~issue_width:4
      ~units:
        [ { Config.unit_name = "mem";
            classes = [ Iclass.Load ];
            issue_latency = 2;
            multiplicity = 2;
          } ]
  in
  let loads =
    List.init 4 (fun k ->
        Instr.make Opcode.Ld ~dst:(r (10 + k)) ~srcs:[ Instr.Oreg Reg.sp ] ~offset:k)
  in
  (* two units: two loads issue at cycle 0, two more at cycle 2 *)
  Alcotest.(check (list int)) "pairs of loads"
    [ 0; 0; 2; 2 ]
    (issue_cycles c loads)

let test_in_order_stall_blocks_younger () =
  (* an independent instruction behind a stalled one also waits
     (in-order issue) *)
  let c = Presets.superscalar 2 in
  let producer = Instr.make Opcode.Ld ~dst:(r 10) ~srcs:[ Instr.Oreg Reg.sp ] in
  let consumer = Instr.make Opcode.Add ~dst:(r 11) ~srcs:[ Instr.Oreg (r 10); Instr.Oimm 1 ] in
  let independent_one = Instr.make Opcode.Add ~dst:(r 12) ~srcs:[ Instr.Oreg (r 4); Instr.Oimm 1 ] in
  Alcotest.(check (list int)) "younger waits behind stalled"
    [ 0; 1; 1 ]
    (issue_cycles c [ producer; consumer; independent_one ])

let test_branches_free () =
  (* control is free under perfect prediction: branches only occupy
     issue slots *)
  let c = Presets.base in
  let b = Builder.beq (r 1) (r 2) (Label.of_string "x") in
  Alcotest.(check (list int)) "branch issues like any op"
    [ 0; 1; 2 ]
    (issue_cycles c [ b; Instr.copy b; Instr.copy b ])

let test_speedup_metric () =
  let t = Timing.create (Presets.superscalar 4) in
  List.iter (fun i -> Timing.issue t i (-1)) (independent 8);
  Helpers.check_float "8 instrs in 2 cycles" 4.0 (Timing.speedup t)

let test_cache_behavior () =
  let cache = Ilp_sim.Cache.create ~lines:4 ~line_words:4 ~penalty:10 () in
  Alcotest.(check bool) "first access misses" false (Ilp_sim.Cache.access cache 0);
  Alcotest.(check bool) "same line hits" true (Ilp_sim.Cache.access cache 3);
  Alcotest.(check bool) "next line misses" false (Ilp_sim.Cache.access cache 4);
  (* 4 lines x 4 words: address 64 maps to the same index as 0 *)
  Alcotest.(check bool) "conflict evicts" false (Ilp_sim.Cache.access cache 64);
  Alcotest.(check bool) "original now misses" false (Ilp_sim.Cache.access cache 0);
  Alcotest.(check int) "accesses counted" 5 (Ilp_sim.Cache.accesses cache);
  Alcotest.(check int) "misses counted" 4 (Ilp_sim.Cache.misses cache);
  Helpers.check_float "miss rate" 0.8 (Ilp_sim.Cache.miss_rate cache)

let test_cache_invalid () =
  Alcotest.(check bool) "non-power-of-two rejected" true
    (match Ilp_sim.Cache.create ~lines:3 ~penalty:1 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_cache_stalls_pipeline () =
  let config = Presets.base in
  let with_cache penalty =
    let cache = Ilp_sim.Cache.create ~lines:4 ~line_words:1 ~penalty () in
    let t = Timing.create ~cache config in
    let loads =
      List.init 8 (fun k ->
          Instr.make Opcode.Ld ~dst:(r (10 + k)) ~srcs:[ Instr.Oreg Reg.sp ]
            ~offset:k)
    in
    (* distinct addresses: every access misses *)
    List.iteri (fun k i -> Timing.issue t i (k * 17)) loads;
    Timing.minor_cycles t
  in
  Alcotest.(check bool) "bigger penalty costs more" true
    (with_cache 20 > with_cache 2)

let test_scoreboard_size () =
  (* the scoreboard follows the executor's register-file size *)
  let hi = Instr.make Opcode.Li ~dst:(r 400) ~srcs:[ Instr.Oimm 1 ] in
  let t = Timing.create ~registers:512 Presets.base in
  Timing.issue t hi (-1);
  Alcotest.(check int) "register 400 fits with ~registers:512" 1
    (Timing.instrs t);
  Alcotest.(check bool) "default size matches Exec.default_options" true
    (Ilp_sim.Exec.default_options.Ilp_sim.Exec.registers = 256
    &&
    match Timing.issue (Timing.create Presets.base) hi (-1) with
    | exception Invalid_argument _ -> true
    | () -> false)

let histogram_total t = Array.fold_left ( + ) 0 t.Timing.issue_histogram

let test_histogram_accounts_cache_stalls () =
  (* stores that miss raise cache_stall_until; the skipped cycles must
     still appear in the issue histogram as zero-issue cycles *)
  let cache = Ilp_sim.Cache.create ~lines:4 ~line_words:1 ~penalty:10 () in
  let t = Timing.create ~cache Presets.base in
  let stores =
    List.init 6 (fun k ->
        Instr.make Opcode.St
          ~srcs:[ Instr.Oreg (r 4); Instr.Oreg Reg.sp ]
          ~offset:k)
  in
  List.iteri (fun k i -> Timing.issue t i (k * 33)) stores;
  Timing.finish t;
  Alcotest.(check bool) "write misses stalled the pipe" true
    (t.Timing.stall_cycles > 0);
  Alcotest.(check int) "histogram covers every minor cycle"
    (Timing.minor_cycles t) (histogram_total t)

let test_histogram_accounts_drain () =
  (* without a cache: finish pads the histogram through the drain *)
  let c = Presets.superpipelined 3 in
  let t = Timing.create c in
  List.iter (fun i -> Timing.issue t i (-1)) (chain 4);
  Timing.finish t;
  Alcotest.(check int) "histogram covers every minor cycle"
    (Timing.minor_cycles t) (histogram_total t)

(* Snapshot/resume round-trip: split an instruction stream at an
   arbitrary point, resume in a fresh model, and the final cycle count,
   stalls and histogram must match the unsplit run — including a cache
   whose tag state straddles the cut (the repeated address must hit
   after the cut only if the fill before the cut was carried over). *)
let test_snapshot_resume_roundtrip () =
  let config = Presets.superscalar 2 in
  let stream =
    List.concat_map
      (fun k ->
        [ (Instr.make Opcode.Ld ~dst:(r (20 + (k mod 8)))
             ~srcs:[ Instr.Oreg Reg.sp ] ~offset:k,
           17 * (k mod 5));
          (Instr.make Opcode.Add ~dst:(r 40)
             ~srcs:[ Instr.Oreg (r (20 + (k mod 8))); Instr.Oreg (r 40) ],
           -1)
        ])
      (List.init 12 Fun.id)
  in
  let run_with cuts =
    let cache = Ilp_sim.Cache.create ~lines:4 ~line_words:1 ~penalty:9 () in
    let t = ref (Timing.create ~cache config) in
    List.iteri
      (fun k (i, addr) ->
        if List.mem k cuts then t := Timing.resume (Timing.snapshot !t);
        Timing.issue !t i addr)
      stream;
    Timing.finish !t;
    ( Timing.minor_cycles !t,
      Timing.instrs !t,
      !t.Timing.stall_cycles,
      Array.to_list !t.Timing.issue_histogram )
  in
  let reference = run_with [] in
  List.iter
    (fun cuts ->
      if run_with cuts <> reference then
        Alcotest.failf "cut at %s: split run differs from unsplit run"
          (String.concat "," (List.map string_of_int cuts)))
    [ [ 1 ]; [ 7 ]; [ 23 ]; [ 3; 9; 15 ]; List.init 24 Fun.id ]

let test_snapshot_is_independent () =
  (* the snapshot is a copy: mutating the live model afterwards must not
     disturb it, and resuming twice gives identical continuations *)
  let t = Timing.create Presets.base in
  List.iter (fun i -> Timing.issue t i (-1)) (chain 3);
  let snap = Timing.snapshot t in
  List.iter (fun i -> Timing.issue t i (-1)) (chain 5);
  let finishes snapshot =
    let t = Timing.resume snapshot in
    Timing.finish t;
    (Timing.minor_cycles t, Timing.instrs t)
  in
  let a = finishes snap and b = finishes snap in
  Alcotest.(check (pair int int)) "two resumes agree" a b;
  Alcotest.(check int) "snapshot kept the pre-mutation count" 3 (snd a)

let test_cache_restore_rejects_geometry () =
  let mk ~lines ~penalty =
    Ilp_sim.Cache.create ~lines ~line_words:1 ~penalty ()
  in
  let state = Ilp_sim.Cache.snapshot (mk ~lines:8 ~penalty:5) in
  Alcotest.(check bool) "geometry mismatch raises" true
    (match Ilp_sim.Cache.restore (mk ~lines:16 ~penalty:5) state with
    | exception Invalid_argument _ -> true
    | () -> false);
  Alcotest.(check bool) "penalty mismatch raises" true
    (match Ilp_sim.Cache.restore (mk ~lines:8 ~penalty:7) state with
    | exception Invalid_argument _ -> true
    | () -> false);
  Alcotest.(check bool) "matching geometry restores" true
    (match Ilp_sim.Cache.restore (mk ~lines:8 ~penalty:5) state with
    | () -> true
    | exception Invalid_argument _ -> false)

let tests =
  [ Alcotest.test_case "base throughput" `Quick test_base_throughput;
    Alcotest.test_case "snapshot/resume round-trip" `Quick
      test_snapshot_resume_roundtrip;
    Alcotest.test_case "snapshot independence" `Quick
      test_snapshot_is_independent;
    Alcotest.test_case "cache restore geometry" `Quick
      test_cache_restore_rejects_geometry;
    Alcotest.test_case "scoreboard size" `Quick test_scoreboard_size;
    Alcotest.test_case "histogram vs cache stalls" `Quick
      test_histogram_accounts_cache_stalls;
    Alcotest.test_case "histogram vs drain" `Quick
      test_histogram_accounts_drain;
    Alcotest.test_case "superscalar width" `Quick test_superscalar_width;
    Alcotest.test_case "superpipelined latency" `Quick test_superpipelined_latency;
    Alcotest.test_case "WAW ordering" `Quick test_waw_orders_completions;
    Alcotest.test_case "unit conflicts" `Quick test_unit_conflicts;
    Alcotest.test_case "unit multiplicity" `Quick test_multiplicity;
    Alcotest.test_case "in-order stall" `Quick test_in_order_stall_blocks_younger;
    Alcotest.test_case "branches are free" `Quick test_branches_free;
    Alcotest.test_case "speedup metric" `Quick test_speedup_metric;
    Alcotest.test_case "cache behaviour" `Quick test_cache_behavior;
    Alcotest.test_case "cache validation" `Quick test_cache_invalid;
    Alcotest.test_case "cache stalls pipeline" `Quick test_cache_stalls_pipeline ]
