(* Shared helpers for the test suite. *)

open Ilp_machine

let check_float = Alcotest.(check (float 1e-9))

(* relative-tolerance float check for accumulated FP results *)
let check_float_rel ?(tol = 1e-6) msg expected actual =
  let denom = max (abs_float expected) 1.0 in
  if abs_float (expected -. actual) /. denom > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let value_testable =
  Alcotest.testable Ilp_sim.Value.pp Ilp_sim.Value.equal

(* Compile a MiniMod source and execute it on [config] (default: base),
   returning the outcome. *)
let run_source ?(config = Presets.base) ?(level = Ilp_core.Ilp.O4) ?unroll src
    =
  let program = Ilp_core.Ilp.compile ?unroll ~level config src in
  Ilp_sim.Exec.run program

let sink_of ?config ?level ?unroll src =
  (run_source ?config ?level ?unroll src).Ilp_sim.Exec.sink

(* Sink value must be identical (or within FP tolerance) at every
   optimization level; a very strong whole-compiler test. *)
let check_all_levels ?(tol = 0.0) name src =
  let sinks =
    List.map (fun level -> sink_of ~level src) Ilp_core.Ilp.all_levels
  in
  match sinks with
  | [] -> ()
  | first :: rest ->
      List.iteri
        (fun i s ->
          match (first, s) with
          | Ilp_sim.Value.Int a, Ilp_sim.Value.Int b ->
              if a <> b then
                Alcotest.failf "%s: level %d sink %d <> O0 sink %d" name
                  (i + 1) b a
          | Ilp_sim.Value.Float a, Ilp_sim.Value.Float b ->
              let denom = max (abs_float a) 1.0 in
              if abs_float (a -. b) /. denom > tol then
                Alcotest.failf "%s: level %d sink %g <> O0 sink %g" name
                  (i + 1) b a
          | _ -> Alcotest.failf "%s: sink type changed across levels" name)
        rest

let measure ?(config = Presets.base) ?(level = Ilp_core.Ilp.O4) ?unroll src =
  let program = Ilp_core.Ilp.compile ?unroll ~level config src in
  Ilp_sim.Metrics.measure config program
