(* Persistent trace-store tests.

   The headline property is safety of the cache: a stored trace must
   reload bit-identically to the capture it came from — across the
   pack/encode/decode/unpack round trip and across recompilation — and
   any damaged, truncated, version-skewed, renamed or key-colliding
   file must be rejected loudly, with the sweep engine falling back to
   a fresh capture so measured results never change. *)

open Ilp_machine
module Trace_buffer = Ilp_sim.Trace_buffer
module Codec = Ilp_store.Codec
module Store = Ilp_store.Store
module Fingerprint = Ilp_store.Fingerprint
module Experiments = Ilp_core.Experiments
module W = Ilp_workloads.Workload

let find_workload name =
  match Ilp_workloads.Registry.find name with
  | Some w -> w
  | None -> Alcotest.fail ("no workload " ^ name)

(* a unique empty directory under the system temp dir *)
let fresh_store_dir () =
  let path = Filename.temp_file "ilp_store_test" "" in
  Sys.remove path;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let with_fresh_store f =
  let dir = fresh_store_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () -> f (Store.open_root dir))

let key_of ?(workload = "synthetic") ?(unroll_mode = `None)
    ?(unroll_factor = 1) ?(opt_level = 4) ?(config = Presets.base) pre =
  Store.key_for ~workload ~unroll_mode ~unroll_factor ~opt_level ~config
    ~fingerprint:(Fingerprint.program pre)

(* compile + capture one grid cell *)
let capture_cell ?unroll ~level config source =
  let pre = Ilp_core.Ilp.compile_unscheduled ?unroll ~level config source in
  (pre, Trace_buffer.capture pre)

(* ------------------------------------------------------------------ *)
(* round trips                                                         *)

let check_roundtrip name key pre trace =
  let packed = Trace_buffer.pack trace pre in
  let bytes = Codec.encode key packed in
  match Codec.decode bytes with
  | Error msg -> Alcotest.failf "%s: decode failed: %s" name msg
  | Ok (key', packed') ->
      Alcotest.(check bool) (name ^ ": key survives") true
        (Codec.equal_key key key');
      let trace' = Trace_buffer.unpack packed' pre in
      Alcotest.(check bool)
        (name ^ ": unpack(decode(encode(pack))) = capture")
        true
        (Trace_buffer.equal trace trace')

(* every workload at its default compilation *)
let test_roundtrip_all_workloads () =
  List.iter
    (fun (w : W.t) ->
      let pre, trace = capture_cell ~level:Ilp_core.Ilp.O4 Presets.base
          w.W.source in
      let key = key_of ~workload:w.W.name pre in
      check_roundtrip w.W.name key pre trace)
    Ilp_workloads.Registry.all

(* one workload across the (level, unroll, register split) grid *)
let test_roundtrip_grid () =
  let w = find_workload "linpack" in
  List.iter
    (fun level ->
      List.iter
        (fun unroll ->
          List.iter
            (fun (temps, homes) ->
              let config =
                Config.make "grid" ~temp_regs:temps ~home_regs:homes
              in
              let source =
                match unroll with
                | Some { Ilp_core.Ilp.mode = Ilp_lang.Unroll.Careful; _ } ->
                    W.source_for_mode w `Careful
                | _ -> w.W.source
              in
              let pre, trace = capture_cell ?unroll ~level config source in
              let unroll_mode, unroll_factor =
                match unroll with
                | None -> (`None, 1)
                | Some { Ilp_core.Ilp.mode = Ilp_lang.Unroll.Naive; factor; _ }
                  ->
                    (`Naive, factor)
                | Some
                    { Ilp_core.Ilp.mode = Ilp_lang.Unroll.Careful; factor; _ }
                  ->
                    (`Careful, factor)
              in
              let key =
                key_of ~workload:"linpack" ~unroll_mode ~unroll_factor
                  ~opt_level:(Ilp_core.Ilp.level_rank level) ~config pre
              in
              let name =
                Printf.sprintf "linpack O%d %s t%d.h%d"
                  (Ilp_core.Ilp.level_rank level)
                  (match unroll_mode with
                  | `None -> "plain"
                  | `Naive -> Printf.sprintf "naive%d" unroll_factor
                  | `Careful -> Printf.sprintf "careful%d" unroll_factor)
                  temps homes
              in
              check_roundtrip name key pre trace)
            [ (16, 26); (8, 12) ])
        [ None;
          Some
            { Ilp_core.Ilp.mode = Ilp_lang.Unroll.Naive; factor = 2;
              bounds = false };
          Some
            { Ilp_core.Ilp.mode = Ilp_lang.Unroll.Careful; factor = 4;
              bounds = false } ])
    [ Ilp_core.Ilp.O0; Ilp_core.Ilp.O4 ]

(* The cross-process contract, simulated in-process: compile the same
   source twice (fresh instruction ids the second time), store the
   first capture, re-attach it to the second compile.  Fingerprints
   must agree and the reloaded trace must replay bit-identically. *)
let prop_roundtrip_random_programs =
  QCheck2.Test.make ~count:20
    ~name:"random programs: stored trace re-attaches across recompilation"
    ~print:(fun s -> s)
    Gen_minimod.program
    (fun src ->
      let level = Ilp_core.Ilp.O4 in
      let pre1, trace1 =
        try capture_cell ~level Presets.base src
        with _ -> QCheck2.assume_fail ()
      in
      let pre2 =
        Ilp_core.Ilp.compile_unscheduled ~level Presets.base src
      in
      let fp1 = Fingerprint.program pre1 in
      let fp2 = Fingerprint.program pre2 in
      if not (Int64.equal fp1 fp2) then false
      else
        let key = key_of ~workload:"qcheck" pre1 in
        let bytes = Codec.encode key (Trace_buffer.pack trace1 pre1) in
        match Codec.decode_for key bytes with
        | Error _ -> false
        | Ok packed ->
            let trace2 = Trace_buffer.unpack packed pre2 in
            let config = Presets.superscalar 4 in
            let run b t =
              let binary = Ilp_core.Ilp.schedule ~level config b in
              Ilp_sim.Metrics.measure_replay config t binary
            in
            run pre1 trace1 = run pre2 trace2)

(* ------------------------------------------------------------------ *)
(* rejection: every damaged file fails loudly                          *)

let small_fixture =
  lazy
    (let w = find_workload "whet" in
     let pre, trace =
       capture_cell ~level:Ilp_core.Ilp.O4 Presets.base w.W.source
     in
     let key = key_of ~workload:"whet" pre in
     (pre, trace, key, Codec.encode key (Trace_buffer.pack trace pre)))

let flip bytes pos =
  let b = Bytes.copy bytes in
  Bytes.set_uint8 b pos (Bytes.get_uint8 b pos lxor 0x40);
  b

let test_corruption_rejected () =
  let _, _, _, bytes = Lazy.force small_fixture in
  let n = Bytes.length bytes in
  (* representative offsets: magic, version, key block, payload middle,
     final CRC *)
  List.iter
    (fun pos ->
      match Codec.decode (flip bytes pos) with
      | Error _ -> ()
      | Ok _ ->
          Alcotest.failf "flipping byte %d of %d was not detected" pos n)
    [ 0; 9; 14; 40; n / 2; n - 5; n - 1 ]

let prop_any_single_flip_rejected =
  QCheck2.Test.make ~count:200
    ~name:"any single flipped byte is rejected (CRC or earlier check)"
    ~print:QCheck2.Print.int
    QCheck2.Gen.(int_bound 0x3fffffff)
    (fun raw ->
      let _, _, _, bytes = Lazy.force small_fixture in
      let pos = raw mod Bytes.length bytes in
      Result.is_error (Codec.decode (flip bytes pos)))

let test_truncation_rejected () =
  let _, _, _, bytes = Lazy.force small_fixture in
  let n = Bytes.length bytes in
  List.iter
    (fun keep ->
      match Codec.decode (Bytes.sub bytes 0 keep) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "truncation to %d of %d not detected" keep n)
    [ 0; 4; 12; 40; n / 2; n - 1 ]

(* bump the version field and re-stamp a valid CRC: the skew itself
   must be what gets rejected *)
let test_version_skew_rejected () =
  let _, _, _, bytes = Lazy.force small_fixture in
  let b = Bytes.copy bytes in
  let n = Bytes.length b in
  Bytes.set_int32_le b 8 (Int32.of_int (Codec.format_version + 1));
  let crc = Ilp_store.Checksum.Crc32.bytes b ~pos:0 ~len:(n - 4) in
  Bytes.set_int32_le b (n - 4) (Int32.of_int crc);
  match Codec.decode b with
  | Ok _ -> Alcotest.fail "version skew not detected"
  | Error msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool)
        ("skew message names the version: " ^ msg)
        true
        (contains msg "version")

let test_key_collision_rejected () =
  let pre, _, key, bytes = Lazy.force small_fixture in
  let other = { key with Codec.workload = "somebody-else" } in
  (match Codec.decode_for other bytes with
  | Ok _ -> Alcotest.fail "key collision not detected"
  | Error msg ->
      Alcotest.(check bool)
        ("collision message mentions both keys: " ^ msg)
        true
        (String.length msg > 0));
  ignore pre

(* ------------------------------------------------------------------ *)
(* the store on disk                                                   *)

let test_store_hit_miss_stats () =
  with_fresh_store (fun s ->
      let pre, trace, key, _ = Lazy.force small_fixture in
      (match Store.lookup s key with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "hit in an empty store"
      | Error msg -> Alcotest.fail msg);
      Store.save s key (Trace_buffer.pack trace pre);
      (match Store.lookup s key with
      | Ok (Some packed) ->
          Alcotest.(check bool) "reloaded trace equals capture" true
            (Trace_buffer.equal trace (Trace_buffer.unpack packed pre))
      | Ok None -> Alcotest.fail "miss after save"
      | Error msg -> Alcotest.fail msg);
      let st = Store.stats s in
      Alcotest.(check int) "hits" 1 st.Store.hits;
      Alcotest.(check int) "misses" 1 st.Store.misses;
      Alcotest.(check int) "rejects" 0 st.Store.rejects;
      Alcotest.(check int) "writes" 1 st.Store.writes)

let test_store_rejects_corrupt_file () =
  with_fresh_store (fun s ->
      let pre, trace, key, _ = Lazy.force small_fixture in
      Store.save s key (Trace_buffer.pack trace pre);
      let path = Filename.concat (Store.root s) (Codec.key_id key ^ ".trace") in
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      close_in ic;
      let oc = open_out_bin path in
      output_bytes oc (flip b (n / 2));
      close_out oc;
      (match Store.lookup s key with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "corrupt file not rejected by lookup");
      Alcotest.(check int) "reject counted" 1 (Store.stats s).Store.rejects)

let test_verify_catches_renamed_file () =
  with_fresh_store (fun s ->
      let pre, trace, key, _ = Lazy.force small_fixture in
      Store.save s key (Trace_buffer.pack trace pre);
      let good = Filename.concat (Store.root s) (Codec.key_id key ^ ".trace") in
      let bad = Filename.concat (Store.root s) "0123456789abcdef.trace" in
      Sys.rename good bad;
      match Store.verify s with
      | [ (file, Error _) ] ->
          Alcotest.(check string) "the renamed file" "0123456789abcdef.trace"
            file
      | results ->
          Alcotest.failf "expected one bad file, got %d result(s)"
            (List.length results))

let test_gc_is_lru () =
  with_fresh_store (fun s ->
      let pre, trace, key, _ = Lazy.force small_fixture in
      let packed = Trace_buffer.pack trace pre in
      let keys =
        List.map
          (fun w -> { key with Codec.workload = w })
          [ "oldest"; "middle"; "newest" ]
      in
      List.iteri
        (fun i k ->
          Store.save s k packed;
          let path = Filename.concat (Store.root s) (Codec.key_id k ^ ".trace") in
          let t = 1000.0 *. float_of_int (i + 1) in
          Unix.utimes path t t)
        keys;
      let size_of k =
        (Unix.stat
           (Filename.concat (Store.root s) (Codec.key_id k ^ ".trace")))
          .Unix.st_size
      in
      let keep = size_of (List.nth keys 2) in
      let removed = Store.gc s ~max_bytes:keep in
      Alcotest.(check (list string))
        "evicted oldest-first, newest kept"
        [ Codec.key_id (List.hd keys) ^ ".trace";
          Codec.key_id (List.nth keys 1) ^ ".trace" ]
        (List.map fst removed);
      Alcotest.(check int) "one file left" 1 (List.length (Store.list s));
      Alcotest.(check int) "clear removes the rest" 1 (Store.clear s))

(* a successful lookup refreshes mtime, so a recently-hit file survives
   a gc that evicts a never-hit sibling written later *)
let test_hit_refreshes_lru () =
  with_fresh_store (fun s ->
      let pre, trace, key, _ = Lazy.force small_fixture in
      let packed = Trace_buffer.pack trace pre in
      let k_hit = { key with Codec.workload = "hot" } in
      let k_cold = { key with Codec.workload = "cold" } in
      Store.save s k_hit packed;
      Store.save s k_cold packed;
      let path k =
        Filename.concat (Store.root s) (Codec.key_id k ^ ".trace")
      in
      Unix.utimes (path k_hit) 1000.0 1000.0;
      Unix.utimes (path k_cold) 2000.0 2000.0;
      (* the hit touches k_hit's mtime to now, far past 2000.0 *)
      (match Store.lookup s k_hit with
      | Ok (Some _) -> ()
      | _ -> Alcotest.fail "expected a hit");
      let removed =
        Store.gc s ~max_bytes:(Unix.stat (path k_hit)).Unix.st_size
      in
      Alcotest.(check (list string))
        "the never-hit file is evicted, the hit one survives"
        [ Codec.key_id k_cold ^ ".trace" ]
        (List.map fst removed))

(* ------------------------------------------------------------------ *)
(* the sweep engine over the store                                     *)

let collect_warnings f =
  let warnings = ref [] in
  let previous = !Experiments.store_warn in
  Experiments.store_warn := (fun msg -> warnings := msg :: !warnings);
  Fun.protect
    ~finally:(fun () -> Experiments.store_warn := previous)
    (fun () ->
      let r = f () in
      (r, List.rev !warnings))

let sweep_fingerprint runs =
  List.map
    (fun (r : Ilp_sim.Metrics.run) ->
      ( r.Ilp_sim.Metrics.dyn_instrs, r.Ilp_sim.Metrics.minor_cycles,
        r.Ilp_sim.Metrics.stall_cycles, r.Ilp_sim.Metrics.speedup,
        r.Ilp_sim.Metrics.sink ))
    runs

(* corrupt the single stored file between two sweeps: the second sweep
   must warn, fall back to a fresh capture, repair the store, and
   produce identical numbers *)
let test_sweep_falls_back_on_corruption () =
  with_fresh_store (fun s ->
      let w = find_workload "whet" in
      let configs = [ Presets.base; Presets.superscalar 4 ] in
      let sweep () =
        Experiments.with_store (Some s) (fun () ->
            Experiments.measure_workload_many w configs)
      in
      let reference = sweep_fingerprint (sweep ()) in
      Alcotest.(check int) "one capture group, one write" 1
        (Store.stats s).Store.writes;
      (* flip one payload byte of the only stored file *)
      (match Store.list s with
      | [ e ] ->
          let ic = open_in_bin e.Store.file in
          let n = in_channel_length ic in
          let b = Bytes.create n in
          really_input ic b 0 n;
          close_in ic;
          let oc = open_out_bin e.Store.file in
          output_bytes oc (flip b (n - 20));
          close_out oc
      | es -> Alcotest.failf "expected one stored file, got %d"
            (List.length es));
      Store.reset_stats s;
      Experiments.reset_capture_count ();
      let second, warnings = collect_warnings sweep in
      Alcotest.(check bool) "results unchanged by the corrupt file" true
        (sweep_fingerprint second = reference);
      Alcotest.(check int) "the corrupt file was rejected" 1
        (Store.stats s).Store.rejects;
      Alcotest.(check int) "fell back to one fresh capture" 1
        (Experiments.capture_count ());
      Alcotest.(check int) "and repaired the store" 1
        (Store.stats s).Store.writes;
      Alcotest.(check bool)
        (Printf.sprintf "a diagnostic was emitted (%d)" (List.length warnings))
        true
        (List.exists
           (fun msg ->
             (* the CRC failure and the fallback are both named *)
             String.length msg > 0)
           warnings);
      (* third sweep: clean hit, no execution *)
      Store.reset_stats s;
      Experiments.reset_capture_count ();
      let third = sweep () in
      Alcotest.(check bool) "post-repair results identical" true
        (sweep_fingerprint third = reference);
      Alcotest.(check int) "post-repair sweep hits" 1 (Store.stats s).Store.hits;
      Alcotest.(check int) "post-repair sweep executes nothing" 0
        (Experiments.capture_count ()))

(* the acceptance criterion: a warm fig4_1 performs zero workload
   execution and reproduces the cold run's metrics exactly *)
let test_fig4_1_warm_is_free_and_identical () =
  with_fresh_store (fun s ->
      let sweep () =
        Experiments.with_store (Some s) (fun () -> Experiments.fig4_1 ())
      in
      Experiments.reset_capture_count ();
      let cold = sweep () in
      Alcotest.(check int) "cold run captures every workload once" 8
        (Experiments.capture_count ());
      Store.reset_stats s;
      Experiments.reset_capture_count ();
      let warm = sweep () in
      Alcotest.(check int) "warm run executes zero workloads" 0
        (Experiments.capture_count ());
      let st = Store.stats s in
      Alcotest.(check int) "warm run misses nothing" 0 st.Store.misses;
      Alcotest.(check int) "warm run rejects nothing" 0 st.Store.rejects;
      Alcotest.(check int) "warm run hits every group" 8 st.Store.hits;
      Alcotest.(check bool) "warm metrics bit-identical to cold" true
        (cold = warm))

(* under --check, a hit is verified against a fresh capture *)
let test_checked_sweep_verifies_hits () =
  with_fresh_store (fun s ->
      let w = find_workload "whet" in
      let sweep () =
        Experiments.with_store (Some s) (fun () ->
            Experiments.with_checks true (fun () ->
                Experiments.measure_workload_many w [ Presets.base ]))
      in
      let reference = sweep_fingerprint (sweep ()) in
      Experiments.reset_capture_count ();
      let warm = sweep_fingerprint (sweep ()) in
      Alcotest.(check bool) "checked warm sweep agrees" true
        (warm = reference);
      Alcotest.(check int)
        "checked warm sweep still hits the store" 1
        (Store.stats s).Store.hits;
      Alcotest.(check int)
        "but re-captures to verify the stored trace" 1
        (Experiments.capture_count ()))

let tests =
  [ Alcotest.test_case "round trip: every workload" `Slow
      test_roundtrip_all_workloads;
    Alcotest.test_case "round trip: level x unroll x split grid" `Slow
      test_roundtrip_grid;
    QCheck_alcotest.to_alcotest prop_roundtrip_random_programs;
    Alcotest.test_case "corruption rejected at fixed offsets" `Quick
      test_corruption_rejected;
    QCheck_alcotest.to_alcotest prop_any_single_flip_rejected;
    Alcotest.test_case "truncation rejected" `Quick test_truncation_rejected;
    Alcotest.test_case "version skew rejected" `Quick
      test_version_skew_rejected;
    Alcotest.test_case "key collision rejected" `Quick
      test_key_collision_rejected;
    Alcotest.test_case "store hit/miss/stats" `Quick
      test_store_hit_miss_stats;
    Alcotest.test_case "store rejects corrupt file" `Quick
      test_store_rejects_corrupt_file;
    Alcotest.test_case "verify catches renamed files" `Quick
      test_verify_catches_renamed_file;
    Alcotest.test_case "gc evicts LRU first" `Quick test_gc_is_lru;
    Alcotest.test_case "a hit refreshes LRU order" `Quick
      test_hit_refreshes_lru;
    Alcotest.test_case "sweep falls back on corruption" `Slow
      test_sweep_falls_back_on_corruption;
    Alcotest.test_case "warm fig4_1: zero execution, identical metrics"
      `Slow test_fig4_1_warm_is_free_and_identical;
    Alcotest.test_case "checked sweep verifies hits" `Slow
      test_checked_sweep_verifies_hits ]
