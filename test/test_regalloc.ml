(* Register-allocation tests: the function-wide temp allocator (including
   spilling and call-crossing values) and home promotion. *)

open Ilp_ir
open Ilp_machine

let compile_raw src = Ilp_lang.Codegen.gen_program (Ilp_lang.Semant.compile_source src)

let no_virtuals (p : Program.t) =
  List.for_all
    (fun f ->
      List.for_all
        (fun b ->
          List.for_all
            (fun i ->
              List.for_all Reg.is_physical (Instr.defs i)
              && List.for_all Reg.is_physical (Instr.uses i))
            b.Block.instrs)
        f.Func.blocks)
    p.Program.functions

let test_temp_alloc_eliminates_virtuals () =
  let w = Option.get (Ilp_workloads.Registry.find "stanford") in
  let p = compile_raw w.Ilp_workloads.Workload.source in
  let allocated = Ilp_regalloc.Temp_alloc.run Presets.base p in
  Alcotest.(check bool) "no virtual registers remain" true (no_virtuals allocated)

let test_temp_alloc_respects_pool () =
  let config = Config.make "tiny" ~temp_regs:3 in
  let src =
    {|
fun main() {
  # expression wide enough to exceed three temps
  sink((1 + 2) * (3 + 4) + (5 + 6) * (7 + 8) + (9 + 10) * (11 + 12));
}
|}
  in
  let p = Ilp_regalloc.Temp_alloc.run config (compile_raw src) in
  Alcotest.(check bool) "no virtuals" true (no_virtuals p);
  let in_range =
    let temp_hi = Ilp_regalloc.Regfile.home_base config in
    List.for_all
      (fun (f : Func.t) ->
        List.for_all
          (fun (b : Block.t) ->
            List.for_all
              (fun i ->
                List.for_all
                  (fun reg -> Reg.index reg < temp_hi)
                  (Instr.defs i @ Instr.uses i))
              b.Block.instrs)
          f.Func.blocks)
      p.Program.functions
  in
  Alcotest.(check bool) "all registers within temp partition" true in_range;
  Alcotest.check Helpers.value_testable "spilled expression still right"
    (Ilp_sim.Value.Int 623)
    (Ilp_sim.Exec.run p).Ilp_sim.Exec.sink

let test_temp_alloc_call_crossing () =
  (* a value needed on both sides of a call must be spilled (no
     callee-saved temps) *)
  let src =
    {|
fun id(x: int) : int { return x; }
fun main() {
  sink(id(3) + id(4) + id(5));
}
|}
  in
  let p = Ilp_regalloc.Temp_alloc.run Presets.base (compile_raw src) in
  Alcotest.(check bool) "no virtuals" true (no_virtuals p);
  Alcotest.check Helpers.value_testable "call-crossing values survive"
    (Ilp_sim.Value.Int 12)
    (Ilp_sim.Exec.run p).Ilp_sim.Exec.sink

let test_temp_alloc_recursion_with_spills () =
  let src =
    {|
fun fib(n: int) : int {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
fun main() { sink(fib(12)); }
|}
  in
  List.iter
    (fun temps ->
      let config = Config.make "t" ~temp_regs:temps in
      let p = Ilp_regalloc.Temp_alloc.run config (compile_raw src) in
      Alcotest.check Helpers.value_testable
        (Printf.sprintf "fib with %d temps" temps)
        (Ilp_sim.Value.Int 144)
        (Ilp_sim.Exec.run p).Ilp_sim.Exec.sink)
    [ 2; 4; 16 ]

let test_temp_alloc_empty_pool_rejected () =
  let config = Config.make "none" ~temp_regs:0 in
  let p = compile_raw "fun main() { sink(1); }" in
  Alcotest.(check bool) "raises" true
    (match Ilp_regalloc.Temp_alloc.run config p with
    | exception Ilp_regalloc.Temp_alloc.Error _ -> true
    | _ -> false)

(* --- global allocation (home promotion) --- *)

let count_loads (p : Program.t) =
  List.fold_left
    (fun acc (f : Func.t) ->
      List.fold_left
        (fun acc (b : Block.t) ->
          acc + List.length (List.filter Instr.is_load b.Block.instrs))
        acc f.Func.blocks)
    0 p.Program.functions

let galloc_src =
  {|
var hot : int = 5;
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 0; i < 50; i = i + 1) {
    s = s + hot;
    hot = hot + 1;
  }
  sink(s);
}
|}

let test_galloc_removes_loads () =
  let p = compile_raw galloc_src in
  let promoted = Ilp_regalloc.Global_alloc.run Presets.base p in
  Alcotest.(check bool) "static loads reduced" true
    (count_loads promoted < count_loads p);
  let v prog =
    (Ilp_sim.Exec.run (Ilp_regalloc.Temp_alloc.run Presets.base prog))
      .Ilp_sim.Exec.sink
  in
  Alcotest.check Helpers.value_testable "semantics preserved" (v p) (v promoted)

let test_galloc_initial_values () =
  (* a promoted initialized global must see its initial value *)
  let src =
    {|
var init7 : int = 7;
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 0; i < 10; i = i + 1) { s = s + init7; }
  sink(s);
}
|}
  in
  Alcotest.check Helpers.value_testable "initial value loaded"
    (Ilp_sim.Value.Int 70)
    (Helpers.sink_of ~level:Ilp_core.Ilp.O4 src)

let test_galloc_recursive_locals_excluded () =
  (* locals of recursive functions must not be promoted *)
  let src =
    {|
fun sum_to(n: int) : int {
  var local_acc : int;
  if (n == 0) { return 0; }
  local_acc = sum_to(n - 1);
  return local_acc + n;
}
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 0; i < 20; i = i + 1) { s = s + sum_to(10); }
  sink(s);
}
|}
  in
  Helpers.check_all_levels "recursive locals" src

let test_galloc_mutual_recursion () =
  let src =
    {|
fun is_even(n: int) : int {
  var t : int = n;
  if (t == 0) { return 1; }
  return is_odd(t - 1);
}
fun is_odd(n: int) : int {
  var t : int = n;
  if (t == 0) { return 0; }
  return is_even(t - 1);
}
fun main() { sink(is_even(10) * 10 + is_odd(7)); }
|}
  in
  Helpers.check_all_levels "mutual recursion" src

let test_galloc_sink_not_promoted () =
  (* the checksum cell must keep its stores *)
  let src = "fun main() { var i : int; for (i = 0; i < 30; i = i + 1) { sink(i); } }" in
  Alcotest.check Helpers.value_testable "last sink visible"
    (Ilp_sim.Value.Int 29)
    (Helpers.sink_of ~level:Ilp_core.Ilp.O4 src)

let test_galloc_respects_home_count () =
  let config = Config.make "few-homes" ~home_regs:2 in
  let p = Ilp_regalloc.Global_alloc.run config (compile_raw galloc_src) in
  let p = Ilp_regalloc.Temp_alloc.run config p in
  Alcotest.check Helpers.value_testable "two homes still correct"
    (Ilp_sim.Value.Int 1475)
    (Ilp_sim.Exec.run p).Ilp_sim.Exec.sink

let test_galloc_home_flush_on_redefinition () =
  (* regression: read of a promoted variable used after the variable is
     reassigned must see the old value *)
  let src =
    {|
fun main() {
  var a : int = 10;
  var b : int;
  var old : int;
  old = a;          # read
  a = a + 5;        # redefine
  b = old + a;      # old must still be 10
  sink(b);
}
|}
  in
  Alcotest.check Helpers.value_testable "old value kept"
    (Ilp_sim.Value.Int 25)
    (Helpers.sink_of ~level:Ilp_core.Ilp.O4 src)

let tests =
  [ Alcotest.test_case "temp alloc removes virtuals" `Quick test_temp_alloc_eliminates_virtuals;
    Alcotest.test_case "temp pool respected" `Quick test_temp_alloc_respects_pool;
    Alcotest.test_case "call-crossing spills" `Quick test_temp_alloc_call_crossing;
    Alcotest.test_case "recursion with tiny pools" `Quick test_temp_alloc_recursion_with_spills;
    Alcotest.test_case "empty pool rejected" `Quick test_temp_alloc_empty_pool_rejected;
    Alcotest.test_case "home promotion removes loads" `Quick test_galloc_removes_loads;
    Alcotest.test_case "promoted initial values" `Quick test_galloc_initial_values;
    Alcotest.test_case "recursive locals excluded" `Quick test_galloc_recursive_locals_excluded;
    Alcotest.test_case "mutual recursion" `Quick test_galloc_mutual_recursion;
    Alcotest.test_case "sink never promoted" `Quick test_galloc_sink_not_promoted;
    Alcotest.test_case "home count respected" `Quick test_galloc_respects_home_count;
    Alcotest.test_case "home flush on redefinition" `Quick test_galloc_home_flush_on_redefinition ]
