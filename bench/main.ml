(* Benchmark harness.

   Running this executable regenerates every table and figure of the
   paper's evaluation (printed first, in paper order), then times the
   reproduction machinery itself with Bechamel: one Test.make per
   table/figure, plus microbenchmarks of the compiler and simulator
   components.

     dune exec bench/main.exe *)

open Bechamel
open Toolkit

(* --jobs N / -j N: domain count for the parallel sweep engine used by
   the regeneration phase (the wall-clock comparisons pin their own job
   counts).  Defaults to the runtime's recommendation for this host. *)
let jobs =
  let rec scan = function
    | ("--jobs" | "-j") :: n :: _ -> int_of_string n
    | _ :: rest -> scan rest
    | [] -> Domain.recommended_domain_count ()
  in
  scan (Array.to_list Sys.argv)

(* --parallel-only: run just the parallel-scaling measurement (writes
   BENCH_parallel.json) and skip the regeneration and Bechamel phases —
   what CI runs to publish the scaling artifact. *)
let parallel_only = Array.exists (( = ) "--parallel-only") Sys.argv

(* --store-only: run just the cold-vs-warm trace-store measurement
   (writes BENCH_store.json) and skip everything else. *)
let store_only = Array.exists (( = ) "--store-only") Sys.argv

(* --memdep-only: run just the memory-disambiguation study (writes
   BENCH_memdep.json) and skip everything else — what CI runs to
   publish the disambiguation artifact. *)
let memdep_only = Array.exists (( = ) "--memdep-only") Sys.argv

(* --unroll-only: run just the bound-aware unrolling study (writes
   BENCH_unroll.json) and skip everything else — what CI runs to
   publish the unrolling artifact. *)
let unroll_only = Array.exists (( = ) "--unroll-only") Sys.argv

(* --range-only: run just the value-range disambiguation study (writes
   BENCH_rangedep.json) and skip everything else — what CI runs to
   publish the range-sharpening artifact. *)
let range_only = Array.exists (( = ) "--range-only") Sys.argv

(* ------------------------------------------------------------------ *)
(* 1. regenerate every table and figure                                 *)

let regenerate () =
  print_string
    "================================================================\n\
     Reproduction of Jouppi & Wall (ASPLOS 1989): every table & figure\n\
     ================================================================\n\n";
  List.iter
    (fun (name, render) ->
      Printf.printf "---- %s ----\n%!" name;
      print_string (render ());
      print_newline ())
    Ilp_core.Experiments.all

(* ------------------------------------------------------------------ *)
(* 2. direct vs replay wall clock on fig4_1                             *)

(* fig4_1 sweeps 16 machine configurations over the whole suite; the
   trace-replay engine captures each workload once and replays it per
   configuration.  Time both engines and record the ratio. *)
let time_engines () =
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let direct_s, direct =
    wall (fun () -> Ilp_core.Experiments.fig4_1 ~engine:`Direct ())
  in
  let replay_s, replay =
    wall (fun () -> Ilp_core.Experiments.fig4_1 ~engine:`Replay ())
  in
  if direct <> replay then
    failwith "BUG: replay fig4_1 differs from direct fig4_1";
  let ratio = direct_s /. replay_s in
  Printf.printf
    "---- fig4_1 engine comparison ----\n\
     direct (16 executions):  %.2f s\n\
     replay (8 captures):     %.2f s\n\
     speedup:                 %.2fx\n\n%!"
    direct_s replay_s ratio;
  let oc = open_out "BENCH_replay.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"fig4_1\",\n\
    \  \"direct_seconds\": %.3f,\n\
    \  \"replay_seconds\": %.3f,\n\
    \  \"speedup\": %.2f\n\
     }\n"
    direct_s replay_s ratio;
  close_out oc;
  Printf.printf "wrote BENCH_replay.json\n\n%!"

(* ------------------------------------------------------------------ *)
(* 3. serial vs parallel wall clock on fig4_1                           *)

(* The same replay-engine fig4_1 sweep, fanned out over domain pools of
   1, 2, 4 and (if different) one per host core.  Results must be
   bit-identical whatever the job count — checked against the serial
   engine on every run — while the wall clock depends on how many cores
   the host actually has.  The JSON therefore records the real core
   count and a per-jobs time table, and refuses to call the 1-vs-max
   ratio a "speedup" when it is below 1.0: on a host with fewer cores
   than jobs the comparison measures scheduling overhead, not scaling,
   so it is additionally marked ["valid"]: false. *)
let time_parallel () =
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let with_jobs = Ilp_core.Experiments.with_jobs in
  let serial = Ilp_core.Experiments.fig4_1 () in
  let cores = Domain.recommended_domain_count () in
  let job_counts = List.sort_uniq compare [ 1; 2; 4; cores ] in
  let timings =
    List.map
      (fun j ->
        let s, r =
          wall (fun () -> with_jobs j (fun () -> Ilp_core.Experiments.fig4_1 ()))
        in
        if r <> serial then
          failwith
            (Printf.sprintf "BUG: fig4_1 with jobs=%d differs from serial" j);
        (j, s))
      job_counts
  in
  let time_of j = List.assoc j timings in
  let max_jobs = List.fold_left (fun acc (j, _) -> max acc j) 1 timings in
  let ratio = time_of 1 /. time_of max_jobs in
  let valid = cores >= max_jobs in
  Printf.printf
    "---- fig4_1 parallel engine comparison (host has %d core%s) ----\n"
    cores
    (if cores = 1 then "" else "s");
  List.iter (fun (j, s) -> Printf.printf "jobs=%-3d  %.2f s\n" j s) timings;
  (if ratio >= 1.0 then
     Printf.printf "speedup (jobs=1 vs jobs=%d):   %.2fx\n" max_jobs ratio
   else
     Printf.printf "slowdown (jobs=1 vs jobs=%d):  %.2fx\n" max_jobs
       (1.0 /. ratio));
  if not valid then
    Printf.printf
      "(not a valid scaling measurement: %d job(s) > %d core(s))\n" max_jobs
      cores;
  print_newline ();
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc "{\n  \"experiment\": \"fig4_1\",\n  \"cores\": %d,\n"
    cores;
  List.iter
    (fun (j, s) -> Printf.fprintf oc "  \"jobs_%d_seconds\": %.3f,\n" j s)
    timings;
  if ratio >= 1.0 then Printf.fprintf oc "  \"speedup\": %.2f,\n" ratio
  else Printf.fprintf oc "  \"slowdown\": %.2f,\n" (1.0 /. ratio);
  Printf.fprintf oc "  \"compared_jobs\": [1, %d],\n  \"valid\": %b\n}\n"
    max_jobs valid;
  close_out oc;
  Printf.printf "wrote BENCH_parallel.json\n\n%!"

(* ------------------------------------------------------------------ *)
(* 4. cold vs warm trace store on fig4_1                                *)

(* The same fig4_1 sweep against a fresh persistent store: the cold run
   captures all 8 workloads and writes them back; the warm run must hit
   on every group, perform zero workload executions (checked via the
   engine's capture counter) and produce bit-identical results. *)
let time_store () =
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ilp-bench-store.%d" (Unix.getpid ()))
  in
  let store = Ilp_store.Store.open_root dir in
  ignore (Ilp_store.Store.clear store);
  let sweep () =
    Ilp_core.Experiments.with_store (Some store) Ilp_core.Experiments.fig4_1
  in
  Ilp_core.Experiments.reset_capture_count ();
  let cold_s, cold = wall sweep in
  let cold_captures = Ilp_core.Experiments.capture_count () in
  let cold_stats = Ilp_store.Store.stats store in
  Ilp_store.Store.reset_stats store;
  Ilp_core.Experiments.reset_capture_count ();
  let warm_s, warm = wall sweep in
  let warm_captures = Ilp_core.Experiments.capture_count () in
  let warm_stats = Ilp_store.Store.stats store in
  if warm <> cold then
    failwith "BUG: warm fig4_1 differs from cold fig4_1";
  if warm_captures <> 0 then
    failwith
      (Printf.sprintf
         "BUG: warm fig4_1 executed %d workload(s); a warm sweep must \
          perform zero workload execution"
         warm_captures);
  if warm_stats.Ilp_store.Store.misses <> 0
     || warm_stats.Ilp_store.Store.rejects <> 0 then
    failwith "BUG: warm fig4_1 was not 100% store hits";
  let ratio = cold_s /. warm_s in
  Printf.printf
    "---- fig4_1 trace store comparison ----\n\
     cold (%d captures, %d writes):  %.2f s\n\
     warm (%d hits, 0 executions):   %.2f s\n\
     speedup:                        %.2fx\n\n%!"
    cold_captures cold_stats.Ilp_store.Store.writes cold_s
    warm_stats.Ilp_store.Store.hits warm_s ratio;
  let oc = open_out "BENCH_store.json" in
  Printf.fprintf oc
    "{\n\
    \  \"experiment\": \"fig4_1\",\n\
    \  \"cold_seconds\": %.3f,\n\
    \  \"warm_seconds\": %.3f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"cold_captures\": %d,\n\
    \  \"cold_writes\": %d,\n\
    \  \"warm_hits\": %d,\n\
    \  \"warm_captures\": %d,\n\
    \  \"results_identical\": true\n\
     }\n"
    cold_s warm_s ratio cold_captures cold_stats.Ilp_store.Store.writes
    warm_stats.Ilp_store.Store.hits warm_captures;
  close_out oc;
  ignore (Ilp_store.Store.clear store);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  Printf.printf "wrote BENCH_store.json\n\n%!"

(* ------------------------------------------------------------------ *)
(* 5. conservative vs alias-disambiguated scheduling                    *)

(* The memdep study sweep: every (workload, superscalar degree) cell
   scheduled with and without static memory disambiguation, off one
   shared capture per workload.  The JSON records both curves; the run
   fails if no cell shows a strict ILP improvement — the disambiguation
   pipeline's reason to exist. *)
let time_memdep () =
  let rows = Ilp_core.Experiments.memdep_study () in
  Printf.printf
    "---- memory disambiguation (conservative vs alias-aware scheduling) \
     ----\n";
  List.iter
    (fun (r : Ilp_core.Experiments.memdep_row) ->
      Printf.printf "%-10s degree %d:  %.3f -> %.3f  (%+.1f%%)\n" r.md_bench
        r.md_degree r.md_conservative r.md_disambiguated
        (100.0 *. ((r.md_disambiguated /. r.md_conservative) -. 1.0)))
    rows;
  let improved =
    List.exists
      (fun (r : Ilp_core.Experiments.memdep_row) ->
        r.md_disambiguated > r.md_conservative)
      rows
  in
  let regressed =
    List.exists
      (fun (r : Ilp_core.Experiments.memdep_row) ->
        r.md_disambiguated < r.md_conservative)
      rows
  in
  if not improved then
    failwith
      "BUG: no workload shows strictly higher scheduled ILP with \
       disambiguation on";
  if regressed then
    failwith
      "BUG: a workload scheduled strictly worse with disambiguation on";
  print_newline ();
  let oc = open_out "BENCH_memdep.json" in
  Printf.fprintf oc "{\n  \"experiment\": \"memdep\",\n  \"rows\": [";
  List.iteri
    (fun i (r : Ilp_core.Experiments.memdep_row) ->
      Printf.fprintf oc
        "%s\n\
        \    { \"bench\": \"%s\", \"degree\": %d, \"conservative\": %.4f, \
         \"disambiguated\": %.4f }"
        (if i > 0 then "," else "")
        r.md_bench r.md_degree r.md_conservative r.md_disambiguated)
    rows;
  Printf.fprintf oc "\n  ],\n  \"improved\": %b\n}\n" improved;
  close_out oc;
  Printf.printf "wrote BENCH_memdep.json\n\n%!"

(* ------------------------------------------------------------------ *)
(* 6. bound-aware unrolling: full unroll + peeling vs classic curves    *)

(* The fig4_5_unroll grid: naive / careful / careful-peel parallelism
   per benchmark and factor.  The peel curve must never fall below the
   classic careful curve (tiny relative slack for float noise) — peeling
   only removes remainder-loop work, so a regression is a scheduler or
   unroller bug, not a trade-off. *)
let time_unroll () =
  let rows = Ilp_core.Experiments.unroll_study () in
  Printf.printf
    "---- bound-aware unrolling (naive / careful / careful-peel) ----\n";
  List.iter
    (fun (r : Ilp_core.Experiments.unroll_study_row) ->
      Printf.printf "%-10s %-13s" r.us_bench r.us_series;
      List.iter
        (fun (_, s) -> Printf.printf "  %.3f" s)
        r.us_by_factor;
      print_newline ())
    rows;
  let series name bench =
    List.find_opt
      (fun (r : Ilp_core.Experiments.unroll_study_row) ->
        r.us_bench = bench && r.us_series = name)
      rows
  in
  let benches =
    List.sort_uniq compare
      (List.map
         (fun (r : Ilp_core.Experiments.unroll_study_row) -> r.us_bench)
         rows)
  in
  List.iter
    (fun bench ->
      match (series "careful" bench, series "careful-peel" bench) with
      | Some careful, Some peel ->
          List.iter2
            (fun (factor, c) (_, p) ->
              if p < c *. 0.999 then
                failwith
                  (Printf.sprintf
                     "BUG: %s x%d scheduled worse with peeling than with \
                      the classic careful transform (%.4f < %.4f)"
                     bench factor p c))
            careful.us_by_factor peel.us_by_factor
      | _ -> failwith ("BUG: missing unroll-study series for " ^ bench))
    benches;
  print_newline ();
  let oc = open_out "BENCH_unroll.json" in
  Printf.fprintf oc "{\n  \"experiment\": \"fig4_5_unroll\",\n  \"rows\": [";
  List.iteri
    (fun i (r : Ilp_core.Experiments.unroll_study_row) ->
      Printf.fprintf oc
        "%s\n    { \"bench\": \"%s\", \"series\": \"%s\", \"speedups\": { %s } }"
        (if i > 0 then "," else "")
        r.us_bench r.us_series
        (String.concat ", "
           (List.map
              (fun (factor, s) -> Printf.sprintf "\"%d\": %.4f" factor s)
              r.us_by_factor)))
    rows;
  Printf.fprintf oc "\n  ],\n  \"peel_never_below_careful\": true\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_unroll.json\n\n%!"

(* ------------------------------------------------------------------ *)
(* 7. value-range disambiguation: what the range tier prunes            *)

(* Per workload (rolled or at its shipped unroll factor): DDG edges
   pruned by the symbolic tiers alone vs with the value-range product
   enabled, plus a checksum comparison of the two resulting schedules.
   The range tier only ever adds [No_alias] verdicts, so pruning with
   ranges must dominate everywhere, win strictly somewhere (the
   redblack kernels are built to guarantee it), and never change what
   the program computes. *)
let time_rangedep () =
  let rows = Ilp_core.Experiments.rangedep_study () in
  Printf.printf
    "---- value-range disambiguation (symbolic-only vs range-sharpened) \
     ----\n";
  List.iter
    (fun (r : Ilp_core.Experiments.rangedep_row) ->
      Printf.printf "%-10s %4d pair(s):  pruned %3d -> %3d%s\n" r.rd_bench
        r.rd_pairs r.rd_pruned_sym r.rd_pruned_rng
        (if r.rd_sink_equal then "" else "  CHECKSUM MISMATCH"))
    rows;
  List.iter
    (fun (r : Ilp_core.Experiments.rangedep_row) ->
      if r.rd_pruned_rng < r.rd_pruned_sym then
        failwith
          (Printf.sprintf
             "BUG: %s prunes fewer edges with the range tier on (%d < %d)"
             r.rd_bench r.rd_pruned_rng r.rd_pruned_sym);
      if not r.rd_sink_equal then
        failwith
          (Printf.sprintf
             "BUG: %s computes a different checksum under range-sharpened \
              scheduling"
             r.rd_bench))
    rows;
  let strict =
    List.exists
      (fun (r : Ilp_core.Experiments.rangedep_row) ->
        r.rd_pruned_rng > r.rd_pruned_sym)
      rows
  in
  if not strict then
    failwith
      "BUG: no workload shows strictly more pruning with the range tier on";
  print_newline ();
  let oc = open_out "BENCH_rangedep.json" in
  Printf.fprintf oc "{\n  \"experiment\": \"rangedep\",\n  \"rows\": [";
  List.iteri
    (fun i (r : Ilp_core.Experiments.rangedep_row) ->
      Printf.fprintf oc
        "%s\n\
        \    { \"bench\": \"%s\", \"pairs\": %d, \"pruned_symbolic\": %d, \
         \"pruned_ranges\": %d, \"sink_equal\": %b }"
        (if i > 0 then "," else "")
        r.rd_bench r.rd_pairs r.rd_pruned_sym r.rd_pruned_rng r.rd_sink_equal)
    rows;
  Printf.fprintf oc "\n  ],\n  \"strict_improvement\": %b\n}\n" strict;
  close_out oc;
  Printf.printf "wrote BENCH_rangedep.json\n\n%!"

(* ------------------------------------------------------------------ *)
(* 8. Bechamel suite                                                    *)

let experiment_tests =
  List.map
    (fun (name, render) ->
      Test.make ~name (Staged.stage (fun () -> ignore (render ()))))
    Ilp_core.Experiments.all

(* component microbenchmarks *)

let stanford_source =
  match Ilp_workloads.Registry.find "stanford" with
  | Some w -> w.Ilp_workloads.Workload.source
  | None -> assert false

let yacc_source =
  match Ilp_workloads.Registry.find "yacc" with
  | Some w -> w.Ilp_workloads.Workload.source
  | None -> assert false

let base = Ilp_machine.Presets.base

let compiled_yacc = Ilp_core.Ilp.compile ~level:Ilp_core.Ilp.O4 base yacc_source

let component_tests =
  [ Test.make ~name:"frontend: parse+check stanford"
      (Staged.stage (fun () ->
           ignore (Ilp_lang.Semant.compile_source stanford_source)));
    Test.make ~name:"compile: yacc O4"
      (Staged.stage (fun () ->
           ignore (Ilp_core.Ilp.compile ~level:Ilp_core.Ilp.O4 base yacc_source)));
    Test.make ~name:"compile: yacc O0"
      (Staged.stage (fun () ->
           ignore (Ilp_core.Ilp.compile ~level:Ilp_core.Ilp.O0 base yacc_source)));
    Test.make ~name:"simulate: yacc functional"
      (Staged.stage (fun () -> ignore (Ilp_sim.Exec.run compiled_yacc)));
    Test.make ~name:"simulate: yacc timed (superscalar-4)"
      (Staged.stage (fun () ->
           ignore
             (Ilp_sim.Metrics.measure (Ilp_machine.Presets.superscalar 4)
                compiled_yacc)));
    (* decode-memo pair: the production path memoizes per-static-instruction
       decode; the "fresh decode" observer re-derives the class and register
       index arrays for every dynamic instruction, the pre-memo behavior *)
    Test.make ~name:"timing: yacc issue (memoized decode)"
      (Staged.stage (fun () ->
           let timing =
             Ilp_sim.Timing.create (Ilp_machine.Presets.superscalar 4)
           in
           ignore
             (Ilp_sim.Exec.run ~observer:(Ilp_sim.Timing.observer timing)
                compiled_yacc);
           Ilp_sim.Timing.finish timing));
    Test.make ~name:"timing: yacc issue (fresh decode per instr)"
      (Staged.stage (fun () ->
           let timing =
             Ilp_sim.Timing.create (Ilp_machine.Presets.superscalar 4)
           in
           let module I = Ilp_ir.Instr in
           let indices regs =
             Array.of_list (List.map Ilp_ir.Reg.index regs)
           in
           let observer i addr =
             Ilp_sim.Timing.issue_decoded timing ~cls:(I.iclass i)
               ~is_load:(I.is_load i) ~defs:(indices (I.defs i))
               ~uses:(indices (I.uses i)) addr
           in
           ignore (Ilp_sim.Exec.run ~observer compiled_yacc);
           Ilp_sim.Timing.finish timing));
    Test.make ~name:"schedule: yacc for CRAY-1"
      (Staged.stage (fun () ->
           ignore (Ilp_sched.List_sched.run (Ilp_machine.Presets.cray1 ()) compiled_yacc)))
  ]

let benchmark tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~stabilize:false
      ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  Analyze.merge ols instances results

let print_results results =
  Printf.printf "%-55s %16s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 73 '-');
  match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> print_endline "(no results)"
  | Some table ->
      let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) table [] in
      List.iter
        (fun (name, ols) ->
          let estimate =
            match Analyze.OLS.estimates ols with
            | Some (e :: _) -> e
            | _ -> nan
          in
          let pretty =
            if estimate >= 1e9 then Printf.sprintf "%.2f s" (estimate /. 1e9)
            else if estimate >= 1e6 then Printf.sprintf "%.2f ms" (estimate /. 1e6)
            else if estimate >= 1e3 then Printf.sprintf "%.2f us" (estimate /. 1e3)
            else Printf.sprintf "%.0f ns" estimate
          in
          Printf.printf "%-55s %16s\n" name pretty)
        (List.sort compare rows)

let () =
  if parallel_only then begin
    time_parallel ();
    exit 0
  end;
  if store_only then begin
    time_store ();
    exit 0
  end;
  if memdep_only then begin
    time_memdep ();
    exit 0
  end;
  if unroll_only then begin
    time_unroll ();
    exit 0
  end;
  if range_only then begin
    time_rangedep ();
    exit 0
  end;
  Printf.printf "parallel sweep engine: %d job(s)\n\n%!" jobs;
  Ilp_core.Experiments.with_jobs jobs regenerate;
  print_string
    "================================================================\n\
     Trace-replay engine: direct vs replay wall clock\n\
     ================================================================\n\n";
  time_engines ();
  print_string
    "================================================================\n\
     Parallel sweep engine: jobs=1 vs jobs=4 wall clock\n\
     ================================================================\n\n";
  time_parallel ();
  print_string
    "================================================================\n\
     Persistent trace store: cold vs warm wall clock\n\
     ================================================================\n\n";
  time_store ();
  print_string
    "================================================================\n\
     Memory disambiguation: conservative vs alias-aware scheduling\n\
     ================================================================\n\n";
  time_memdep ();
  print_string
    "================================================================\n\
     Bound-aware unrolling: full unroll + peeling vs classic curves\n\
     ================================================================\n\n";
  time_unroll ();
  print_string
    "================================================================\n\
     Value-range disambiguation: symbolic-only vs range-sharpened\n\
     ================================================================\n\n";
  time_rangedep ();
  print_string
    "================================================================\n\
     Bechamel timings (one test per table/figure + components)\n\
     ================================================================\n\n";
  Printf.printf "timing experiment drivers (quota 1s each)...\n%!";
  let results =
    benchmark (Test.make_grouped ~name:"experiments" experiment_tests)
  in
  print_results results;
  print_newline ();
  Printf.printf "timing components...\n%!";
  let results = benchmark (Test.make_grouped ~name:"components" component_tests) in
  print_results results
