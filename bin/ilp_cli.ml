(* Command-line interface to the reproduction:

     ilp list                          benchmarks and machine presets
     ilp run -b linpack -m cray1 ...   compile + simulate one benchmark
     ilp experiment fig4_1 ...         regenerate a table/figure
     ilp experiment --all              the whole evaluation section
     ilp lint -b linpack -O4           static checks, nothing executed
     ilp disasm -b yacc -O2            dump the compiled IR *)

open Cmdliner

let machine_of_string s =
  match Ilp_machine.Presets.by_name s with
  | Some config -> Ok config
  | None -> (
      (* superscalar-N / superpipelined-M / sps-NxM *)
      let try_prefix prefix make =
        let plen = String.length prefix in
        if String.length s > plen && String.sub s 0 plen = prefix then
          int_of_string_opt (String.sub s plen (String.length s - plen))
          |> Option.map make
        else None
      in
      let candidates =
        [ try_prefix "superscalar-" Ilp_machine.Presets.superscalar;
          try_prefix "superpipelined-" Ilp_machine.Presets.superpipelined ]
      in
      match List.find_opt Option.is_some candidates with
      | Some (Some config) -> Ok config
      | _ ->
          Error
            (`Msg
              (Printf.sprintf
                 "unknown machine %s (try base, multititan, cray1, \
                  cray1-unit, underpipelined, superscalar-N, \
                  superpipelined-M)"
                 s)))

let machine_conv =
  Arg.conv
    ( machine_of_string,
      fun ppf config -> Fmt.string ppf config.Ilp_machine.Config.name )

let level_of_string = function
  | "0" | "O0" | "none" -> Ok Ilp_core.Ilp.O0
  | "1" | "O1" | "sched" -> Ok Ilp_core.Ilp.O1
  | "2" | "O2" | "local" -> Ok Ilp_core.Ilp.O2
  | "3" | "O3" | "global" -> Ok Ilp_core.Ilp.O3
  | "4" | "O4" | "regalloc" -> Ok Ilp_core.Ilp.O4
  | s -> Error (`Msg (Printf.sprintf "unknown optimization level %s" s))

let level_conv =
  Arg.conv
    ( level_of_string,
      fun ppf level -> Fmt.string ppf (Ilp_core.Ilp.opt_level_name level) )

let bench_arg =
  let doc = "Benchmark name (see `ilp list')." in
  Arg.(
    required
    & opt (some string) None
    & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)

let machine_arg =
  let doc = "Machine configuration." in
  Arg.(
    value
    & opt machine_conv Ilp_machine.Presets.base
    & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc)

let level_arg =
  let doc = "Optimization level (0-4)." in
  Arg.(value & opt level_conv Ilp_core.Ilp.O4 & info [ "O"; "opt" ] ~doc)

let unroll_arg =
  let doc = "Unroll innermost loops by this factor." in
  Arg.(value & opt int 1 & info [ "u"; "unroll" ] ~docv:"N" ~doc)

let careful_arg =
  let doc = "Use careful (reassociating, alias-annotated) unrolling." in
  Arg.(value & flag & info [ "careful" ] ~doc)

let peel_arg =
  let doc =
    "Bound-aware unrolling: constant-fold each innermost loop's bounds \
     through the preceding straight-line code; fully unroll short known \
     trip counts and peel the leading [trips mod factor] iterations of \
     the rest, so no remainder loop survives.  Loops whose bounds stay \
     unknown fall back to the classic main-plus-remainder transform; \
     degenerate or index-mutating loops are skipped either way."
  in
  Arg.(value & flag & info [ "peel" ] ~doc)

let jobs_arg =
  let doc =
    "Number of domains for the parallel sweep engine: capture and replay \
     jobs fan out over $(docv) cores with bit-identical results.  \
     Defaults to the runtime's recommended domain count; 0 forces the \
     serial engine."
  in
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* Route sweeps through a [jobs]-domain pool for the duration of one
   subcommand. *)
let with_jobs jobs f = Ilp_core.Experiments.with_jobs jobs f

let store_arg =
  let doc =
    "Persistent trace-store directory.  Sweep captures are looked up here \
     before executing a workload and written back after, so a warm run \
     performs zero workload execution; rejected files (corrupt, \
     truncated, version-skewed) fall back to a fresh capture with a \
     warning on stderr."
  in
  let env =
    Cmd.Env.info "ILP_TRACE_STORE" ~doc:"Default trace-store directory."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~env ~docv:"DIR" ~doc)

(* Install a trace store for the duration of one subcommand; a summary
   of its traffic goes to stderr so stdout results stay byte-identical
   between cold and warm runs. *)
let with_store dir f =
  match dir with
  | None -> f ()
  | Some dir ->
      let s = Ilp_store.Store.open_root dir in
      Fun.protect
        ~finally:(fun () ->
          let { Ilp_store.Store.hits; misses; rejects; writes } =
            Ilp_store.Store.stats s
          in
          Fmt.epr
            "ilp: trace store %s: %d hit(s), %d miss(es), %d reject(s), \
             %d write(s)@."
            dir hits misses rejects writes)
        (fun () -> Ilp_core.Experiments.with_store (Some s) f)

(* Usage errors exit with status 2, distinct from check/compile failures
   (1). *)
let usage_error fmt =
  Printf.ksprintf
    (fun msg ->
      Fmt.epr "ilp: %s@." msg;
      exit 2)
    fmt

let validate_jobs jobs =
  if jobs < 0 then
    usage_error
      "--jobs must be >= 0 (0 forces the serial engine), got %d" jobs

let validate_segment = function
  | Some n when n <= 0 ->
      usage_error
        "--segment must be a positive dynamic-instruction count, got %d" n
  | _ -> ()

let check_arg =
  let doc =
    "Prove every compilation as it happens: validate the IR after every \
     named pass, run the differential oracle at the stage boundaries \
     (each snapshot executed and compared against the unoptimized \
     reference), and verify each schedule is a dependence-respecting \
     permutation.  Measured numbers are bit-identical with and without \
     $(opt)."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

(* A Pass_failed or Mismatch out of a checked compilation is a compiler
   bug report, not a usage error: print it and fail the command. *)
let report_check_failure = function
  | Ilp_core.Ilp.Pass_failed { pass; issue } ->
      Fmt.epr "check failed: pass %s broke the IR: %s@." pass issue;
      exit 1
  | Ilp_core.Diffcheck.Mismatch { stage; what } ->
      Fmt.epr "check failed: %s changed behaviour: %s@." stage what;
      exit 1
  | e -> raise e

let find_bench name =
  match Ilp_workloads.Registry.find name with
  | Some w -> w
  | None ->
      Fmt.epr "unknown benchmark %s; available: %s@." name
        (String.concat ", " Ilp_workloads.Registry.names);
      exit 1

let unroll_spec factor careful peel =
  if factor <= 1 then None
  else
    Some
      { Ilp_core.Ilp.mode =
          (if careful then Ilp_lang.Unroll.Careful else Ilp_lang.Unroll.Naive);
        factor;
        bounds = peel;
      }

(* What the unroller did (and declined to do) to [source] under [unroll]
   — recomputed from the typed AST so commands that only see the
   compiled result can still report it. *)
let unroll_stats_for unroll source =
  match unroll with
  | None -> Ilp_lang.Unroll.no_stats
  | Some { Ilp_core.Ilp.mode; factor; bounds } ->
      snd
        (Ilp_lang.Unroll.program_stats ~bounds mode factor
           (Ilp_lang.Semant.compile_source source))

let source_for w careful =
  if careful then Ilp_workloads.Workload.source_for_mode w `Careful
  else w.Ilp_workloads.Workload.source

(* --- run ---------------------------------------------------------------- *)

let run_cmd =
  let replay_arg =
    let doc =
      "Time the benchmark by capturing its trace once and replaying it \
       through the machine's timing model, instead of observing a direct \
       interpretation.  Results are identical; this exercises the \
       capture-once/replay-many engine the experiment sweeps use."
    in
    Arg.(value & flag & info [ "replay" ] ~doc)
  in
  let segment_arg =
    let doc =
      "With $(b,--replay): cut the replay into segments of $(docv) dynamic \
       instructions, checkpointing and resuming the timing model at each \
       boundary.  Results are bit-identical to an unsegmented replay for \
       any segment size; this exercises the segmented engine the parallel \
       sweeps schedule."
    in
    Arg.(value & opt (some int) None & info [ "segment" ] ~docv:"N" ~doc)
  in
  let verbose_arg =
    let doc =
      "With $(b,--replay): report the captured trace's footprint — \
       recorded streams, addresses, taken bits and packed byte size."
    in
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc)
  in
  let memdep_arg =
    let doc =
      "Schedule with static memory-dependence disambiguation: dependence \
       edges between memory accesses the alias analysis proves disjoint \
       are dropped before list scheduling.  With $(b,--check), every \
       pruned edge is independently re-justified against a conservative \
       dependence graph and the disambiguated schedule's per-address \
       store streams are compared against the unscheduled program."
    in
    Arg.(value & flag & info [ "memdep" ] ~doc)
  in
  let action bench machine level factor careful peel replay segment check
      memdep jobs storedir verbose =
    validate_jobs jobs;
    validate_segment segment;
    let w = find_bench bench in
    let unroll = unroll_spec factor careful peel in
    let source = source_for w careful in
    let trace_stats = ref None in
    let r =
      try
        with_store storedir (fun () ->
            with_jobs jobs (fun () ->
                if replay then (
                  let pre =
                    if check then
                      Ilp_core.Diffcheck.check_unscheduled ?unroll ~level
                        machine source
                    else
                      Ilp_core.Ilp.compile_unscheduled ?unroll ~level machine
                        source
                  in
                  let how, trace =
                    Ilp_core.Experiments.trace_for ~check
                      ~workload:w.Ilp_workloads.Workload.name ~unroll ~level
                      machine pre
                  in
                  (match how with
                  | `Off -> ()
                  | `Hit -> Fmt.epr "ilp: trace store: hit@."
                  | `Miss ->
                      Fmt.epr "ilp: trace store: miss, captured and saved@."
                  | `Rejected ->
                      Fmt.epr
                        "ilp: trace store: stored file rejected, captured \
                         fresh@.");
                  trace_stats := Some (Ilp_sim.Trace_buffer.stats trace);
                  let binary =
                    Ilp_core.Ilp.schedule ~check ~memdep ~level machine pre
                  in
                  match segment with
                  | Some segment ->
                      Ilp_sim.Metrics.measure_replay_segmented ~segment
                        machine trace binary
                  | None -> Ilp_sim.Metrics.measure_replay machine trace binary)
                else if check then (
                  let binary =
                    Ilp_core.Diffcheck.check_compile ?unroll ~memdep ~level
                      machine source
                  in
                  Ilp_sim.Metrics.measure machine binary)
                else Ilp_core.Ilp.measure ?unroll ~memdep ~level machine source))
      with e -> report_check_failure e
    in
    Fmt.pr "benchmark      %s@." bench;
    Fmt.pr "machine        %s@." machine.Ilp_machine.Config.name;
    Fmt.pr "optimization   %s@." (Ilp_core.Ilp.opt_level_name level);
    Fmt.pr "engine         %s@."
      (match (replay, segment) with
      | true, Some n -> Printf.sprintf "trace replay (segments of %d)" n
      | true, None -> "trace replay"
      | false, _ -> "direct");
    if memdep then Fmt.pr "memdep         alias-aware scheduling@.";
    if check then Fmt.pr "checked        every pass (clean)@.";
    (if verbose then
       match !trace_stats with
       | None -> ()
       | Some st ->
           Fmt.pr "trace          %d mem stream(s), %d branch stream(s)@."
             st.Ilp_sim.Trace_buffer.mem_streams
             st.Ilp_sim.Trace_buffer.branch_streams;
           Fmt.pr "trace entries  %d address(es), %d taken bit(s)@."
             st.Ilp_sim.Trace_buffer.addr_entries
             st.Ilp_sim.Trace_buffer.taken_bits;
           Fmt.pr "trace size     %d packed byte(s)@."
             st.Ilp_sim.Trace_buffer.packed_bytes);
    Fmt.pr "instructions   %d@." r.Ilp_sim.Metrics.dyn_instrs;
    Fmt.pr "base cycles    %.1f@." r.Ilp_sim.Metrics.base_cycles;
    Fmt.pr "speedup (ILP)  %.3f@." r.Ilp_sim.Metrics.speedup;
    Fmt.pr "checksum       %a@." Ilp_sim.Value.pp r.Ilp_sim.Metrics.sink
  in
  let term =
    Term.(
      const action $ bench_arg $ machine_arg $ level_arg $ unroll_arg
      $ careful_arg $ peel_arg $ replay_arg $ segment_arg $ check_arg
      $ memdep_arg $ jobs_arg $ store_arg $ verbose_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and simulate one benchmark") term

(* --- list --------------------------------------------------------------- *)

let list_cmd =
  let action () =
    Fmt.pr "benchmarks:@.";
    List.iter
      (fun w ->
        Fmt.pr "  %-10s %s@." w.Ilp_workloads.Workload.name
          w.Ilp_workloads.Workload.description)
      Ilp_workloads.Registry.all;
    Fmt.pr "@.machines: base, multititan, cray1, cray1-unit, underpipelined,@.";
    Fmt.pr "  superscalar-N, superpipelined-M@.";
    Fmt.pr "@.experiments:@.";
    List.iter
      (fun (name, _) -> Fmt.pr "  %s@." name)
      Ilp_core.Experiments.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List benchmarks, machines, and experiments")
    Term.(const action $ const ())

(* --- experiment --------------------------------------------------------- *)

let experiment_cmd =
  let all_flag =
    Arg.(value & flag & info [ "all" ] ~doc:"Run every experiment.")
  in
  let name_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let action all name check jobs storedir =
    validate_jobs jobs;
    try
      Ilp_core.Experiments.with_checks check (fun () ->
          with_store storedir (fun () ->
              with_jobs jobs (fun () ->
                  if all then print_string (Ilp_core.Experiments.run_all ())
                  else
                    match name with
                    | None ->
                        Fmt.epr
                          "specify an experiment or --all (see `ilp list')@.";
                        exit 1
                    | Some name -> (
                        match Ilp_core.Experiments.find name with
                        | Some render -> print_string (render ())
                        | None ->
                            Fmt.epr "unknown experiment %s@." name;
                            exit 1))))
    with e -> report_check_failure e
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate a table or figure from the paper's evaluation")
    Term.(const action $ all_flag $ name_arg $ check_arg $ jobs_arg $ store_arg)

(* --- fuzz --------------------------------------------------------------- *)

let fuzz_cmd =
  let count_arg =
    Arg.(
      value & opt int 100
      & info [ "n"; "count" ] ~docv:"N" ~doc:"Random programs to check.")
  in
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "s"; "seed" ] ~docv:"SEED"
          ~doc:
            "Base random seed.  A run is fully determined by (seed, \
             count): the same counterexample is found and shrunk at any \
             --jobs.")
  in
  let alias_heavy_arg =
    Arg.(
      value & flag
      & info [ "alias-heavy" ]
          ~doc:
            "Draw from the aliasing-adversarial generator mode: one or two \
             arrays hammered through affine indices over shared index \
             locals, index copies, and small positive and negative \
             offsets — the shapes the memory-dependence analysis must \
             either prove apart or refuse to prune.")
  in
  let unroll_heavy_arg =
    Arg.(
      value & flag
      & info [ "unroll-heavy" ]
          ~doc:
            "Draw from the unrolling-adversarial generator mode: small \
             constant bounds around the unroll factors (trip counts 0, 1, \
             factor-1, factor, factor+1), down-counting loops, steps \
             beyond one, inclusive comparisons, statically-zero-trip \
             degenerate headers, loop-index self-assignment and unknown \
             scalar bounds — and widen the unroll specs checked at O4 to \
             both modes, factors up to 8, and both bound settings.")
  in
  let range_heavy_arg =
    Arg.(
      value & flag
      & info [ "range-heavy" ]
          ~doc:
            "Draw from the range-adversarial generator mode: stride-2 and \
             stride-3 index arithmetic interleaving even/odd and mod-3 \
             array cells, split upper/lower array windows, loop bounds \
             near the array extents, and nested counted loops driving \
             monotone accumulators through the widening machinery — the \
             shapes only the value-range analysis can prove apart, so \
             every range-justified schedule prune is re-checked and \
             store-stream-compared.")
  in
  let action count seed jobs alias_heavy unroll_heavy range_heavy =
    let jobs = max 1 jobs in
    match
      Ilp_core.Fuzz.run ~jobs ~count ~seed ~alias_heavy ~unroll_heavy
        ~range_heavy ()
    with
    | () ->
        Fmt.pr
          "fuzz: %d random %sprograms x 5 levels x 3 machines: all checks \
           passed (seed %d)@."
          count
          (if alias_heavy then "alias-heavy "
           else if unroll_heavy then "unroll-heavy "
           else if range_heavy then "range-heavy "
           else "")
          seed
    | exception Ilp_core.Fuzz.Failed f ->
        Fmt.epr "fuzz: iteration %d (seed %d) FAILED on %s:@.  %s@." f.index
          f.seed f.config_name f.error;
        Fmt.epr "@.shrunk counterexample:@.%s@." f.source;
        exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially test the compiler on random MiniMod programs: \
          every pass validated, every stage executed and compared, every \
          schedule legality-checked; failures are shrunk to a minimal \
          program")
    Term.(
      const action $ count_arg $ seed_arg $ jobs_arg $ alias_heavy_arg
      $ unroll_heavy_arg $ range_heavy_arg)

(* --- lint --------------------------------------------------------------- *)

(* Static checking only — nothing is executed.  The program is compiled
   with snapshots after codegen and after every pipeline pass; each
   snapshot is validated (with register-file bounds once allocated) and
   def-assign checked, the register allocators are verified at their
   before/after seams, the schedule is checked as a dependence-respecting
   permutation, and the last pre-allocation snapshot gets the full lint
   suite (dead code, unreachable blocks, redundant expressions). *)
let lint_compile ?unroll ~level config source =
  let module D = Ilp_analysis.Diagnostics in
  let snapshots = ref [] in
  let on_pass name stage p = snapshots := (name, stage, p) :: !snapshots in
  let unsched =
    Ilp_core.Ilp.compile_unscheduled ?unroll ~on_pass ~level config source
  in
  ignore (Ilp_core.Ilp.schedule ~on_pass ~level config unsched);
  let snapshots = List.rev !snapshots in
  let max_reg = Ilp_regalloc.Regfile.file_size config in
  let last_virtual =
    List.fold_left
      (fun acc (name, stage, p) ->
        if stage = `Virtual then Some (name, p) else acc)
      None snapshots
  in
  let diags = ref [] in
  let add pass ds = diags := !diags @ List.map (fun d -> (pass, d)) ds in
  let rec walk prev = function
    | [] -> ()
    | (name, stage, p) :: rest ->
        add name
          (List.map
             (fun (i : Ilp_ir.Validate.issue) ->
               D.make Error ~check:"validate" ~func:i.Ilp_ir.Validate.where
                 i.Ilp_ir.Validate.what)
             (Ilp_ir.Validate.check ~stage ~max_reg p));
        if stage = `Virtual then add name (Ilp_analysis.Lint.errors_only p);
        (match (name, prev) with
        | "global_alloc", Some before ->
            add name
              (Ilp_regalloc.Regalloc_verify.check_global_alloc config ~before
                 ~after:p)
        | "temp_alloc", Some before ->
            add name
              (Ilp_regalloc.Regalloc_verify.check_temp_alloc_program config
                 ~before ~after:p)
        | "list_sched", Some before ->
            (try
               Ilp_sched.Check_sched.check_program config ~original:before
                 ~scheduled:p
             with Ilp_sched.Check_sched.Illegal msg ->
               add name [ D.make Error ~check:"sched" ~func:"program" msg ]);
            (* per-function disambiguation stats on the pre-schedule
               program: how many ordered memory pairs the alias analysis
               sees, proves apart, and would prune beyond the region
               annotations *)
            List.iter
              (fun (f : Ilp_ir.Func.t) ->
                let md = Ilp_analysis.Memdep.analyze f in
                let s = Ilp_analysis.Memdep.func_stats md f in
                add name
                  [ D.make Ilp_analysis.Diagnostics.Info ~check:"memdep"
                      ~func:f.Ilp_ir.Func.name
                      (Printf.sprintf
                         "%d ordered memory pair(s): %d proven no-alias, \
                          %d must-alias, %d edge(s) pruned beyond the \
                          region analysis"
                         s.Ilp_analysis.Memdep.pairs
                         s.Ilp_analysis.Memdep.no_alias
                         s.Ilp_analysis.Memdep.must_alias
                         s.Ilp_analysis.Memdep.pruned) ])
              before.Ilp_ir.Program.functions
        | _ -> ());
        walk (Some p) rest
  in
  walk None snapshots;
  (match last_virtual with
  | Some (name, p) ->
      add name
        (List.filter
           (fun d -> not (D.is_error d))
           (Ilp_analysis.Lint.check p))
  | None -> ());
  !diags

let severity_conv =
  let parse = function
    | "error" -> Ok Ilp_analysis.Diagnostics.Error
    | "warning" -> Ok Ilp_analysis.Diagnostics.Warning
    | "info" -> Ok Ilp_analysis.Diagnostics.Info
    | s -> Error (`Msg (Printf.sprintf "unknown severity %s" s))
  in
  Arg.conv (parse, Ilp_analysis.Diagnostics.pp_severity)

(* --- subscript sanitizer ------------------------------------------------ *)

(* The value-range subscript sanitizer (abstract interpretation over
   the interval x congruence product) on the same typed, possibly
   unrolled program the compiler sees.  Verdicts fold into lint
   diagnostics: a proved out-of-bounds access is an error, an
   unprovable one a warning; proved-safe sites stay silent. *)
let sanitize_analysis ?unroll source =
  let tast = Ilp_core.Ilp.frontend source in
  let tast =
    match unroll with
    | Some { Ilp_core.Ilp.mode; factor; bounds } ->
        Ilp_lang.Unroll.program ~bounds mode factor tast
    | None -> tast
  in
  Ilp_lang.Absint.analyze tast

(* One diagnostic per non-safe (function, array, direction, verdict)
   group: unrolling duplicates an access once per loop copy (with the
   subscript range shifted by the copy's offset), so same-shaped sites
   collapse into a single finding whose range is the join over the
   group and whose copy count says how many sites it stands for.  The
   first site's statement path survives as the location. *)
let sanitize_diags (t : Ilp_lang.Absint.t) :
    (string * Ilp_analysis.Diagnostics.t * int) list =
  let module A = Ilp_lang.Absint in
  let module D = Ilp_analysis.Diagnostics in
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (s : A.site) ->
      match s.A.s_verdict with
      | A.Proved_safe -> ()
      | v -> (
          let key = (s.A.s_func, s.A.s_array, s.A.s_write, v) in
          match Hashtbl.find_opt tbl key with
          | Some r ->
              let range, n = !r in
              r := (Ilp_analysis.Range.V.join range s.A.s_range, n + 1)
          | None ->
              let r = ref (s.A.s_range, 1) in
              Hashtbl.add tbl key r;
              order := (s, r) :: !order))
    t.A.sites;
  List.rev_map
    (fun ((s : A.site), r) ->
      let range, copies = !r in
      ( "sanitize",
        D.make
          (match s.A.s_verdict with
          | A.Proved_oob -> D.Error
          | _ -> D.Warning)
          ~check:"sanitize" ~func:s.A.s_func ~instr:s.A.s_path
          (Printf.sprintf "%s %s[%s] vs extent %d: %s"
             (if s.A.s_write then "store to" else "load from")
             s.A.s_array
             (Ilp_analysis.Range.V.to_string range)
             s.A.s_extent
             (A.verdict_name s.A.s_verdict)),
        copies ))
    !order

(* [(safe, oob, unknown)] counts plus the grouped diagnostics. *)
let sanitize_report ?unroll source =
  let t = sanitize_analysis ?unroll source in
  (Ilp_lang.Absint.counts t, sanitize_diags t)

(* Unrolling copies a loop body N times — and with it every diagnostic
   the copies share.  Collapse findings identical up to their location
   (same pass, severity, check, function and message) into one entry
   carrying its copy count; the first copy's location survives and
   first-appearance order is kept. *)
let dedup_diags (diags : (string * Ilp_analysis.Diagnostics.t) list) :
    (string * Ilp_analysis.Diagnostics.t * int) list =
  let module D = Ilp_analysis.Diagnostics in
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (pass, (d : D.t)) ->
      let key = (pass, d.D.severity, d.D.check, d.D.func, d.D.message) in
      match Hashtbl.find_opt tbl key with
      | Some r -> incr r
      | None ->
          let r = ref 1 in
          Hashtbl.add tbl key r;
          order := (pass, d, r) :: !order)
    diags;
  List.rev_map (fun (pass, d, r) -> (pass, d, !r)) !order

let copies_suffix n = if n > 1 then Printf.sprintf " [x%d copies]" n else ""

(* Stable machine-readable rendering of lint results: schema version 3,
   one entry per linted (benchmark, machine, level, unroll, careful,
   peel) configuration with its threshold-filtered, unroll-deduplicated
   diagnostics (each carrying a [copies] count — how many identical
   findings, typically one per unrolled loop copy, it stands for; the
   severity summary counts each deduplicated entry once), an
   always-present unroll_stats object (loops rolled / peeled / fully
   unrolled, plus every skip reason with an explicit count — zero
   included — so consumers never have to probe for keys), and a
   [sanitize] object with the subscript sanitizer's verdict tally
   (proved-safe / proved-out-of-bounds / unknown over every syntactic
   array access).  Hand-rolled printer — the repo deliberately carries
   no JSON dependency. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let lint_json results =
  let module D = Ilp_analysis.Diagnostics in
  let b = Buffer.create 4096 in
  let errors = ref 0 and warnings = ref 0 and infos = ref 0 in
  let severity_name = function
    | D.Error -> "error"
    | D.Warning -> "warning"
    | D.Info -> "info"
  in
  let opt_string = function
    | None -> "null"
    | Some s -> Printf.sprintf "\"%s\"" (json_escape s)
  in
  let unroll_stats_json (st : Ilp_lang.Unroll.stats) =
    Printf.sprintf
      "{ \"rolled\": %d, \"peeled\": %d, \"full\": %d, \"skipped\": { %s } }"
      st.Ilp_lang.Unroll.rolled st.Ilp_lang.Unroll.peeled
      st.Ilp_lang.Unroll.full
      (String.concat ", "
         (List.map
            (fun r ->
              Printf.sprintf "\"%s\": %d"
                (Ilp_lang.Unroll.skip_reason_name r)
                (Ilp_lang.Unroll.skip_count st r))
            Ilp_lang.Unroll.all_skip_reasons))
  in
  Buffer.add_string b "{\n  \"version\": 3,\n  \"results\": [";
  List.iteri
    (fun i
         ( bench, machine, level, factor, careful, peel, stats,
           (safe, oob, unknown), diags ) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    { \"bench\": \"%s\", \"machine\": \"%s\", \"level\": \
            \"O%d\", \"unroll\": %d, \"careful\": %b, \"peel\": %b,\n\
           \      \"unroll_stats\": %s,\n\
           \      \"sanitize\": { \"safe\": %d, \"oob\": %d, \"unknown\": \
            %d },\n\
           \      \"diagnostics\": ["
           (json_escape bench) (json_escape machine)
           (Ilp_core.Ilp.level_rank level)
           factor careful peel (unroll_stats_json stats) safe oob unknown);
      List.iteri
        (fun j (pass, d, copies) ->
          (match d.D.severity with
          | D.Error -> incr errors
          | D.Warning -> incr warnings
          | D.Info -> incr infos);
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf
               "\n        { \"pass\": \"%s\", \"severity\": \"%s\", \
                \"check\": \"%s\", \"func\": \"%s\", \"block\": %s, \
                \"instr\": %s, \"copies\": %d, \"message\": \"%s\" }"
               (json_escape pass)
               (severity_name d.D.severity)
               (json_escape d.D.check) (json_escape d.D.func)
               (opt_string d.D.block) (opt_string d.D.instr) copies
               (json_escape d.D.message)))
        diags;
      Buffer.add_string b
        (if diags = [] then "] }" else "\n      ] }"))
    results;
  Buffer.add_string b
    (Printf.sprintf
       "\n  ],\n\
       \  \"summary\": { \"errors\": %d, \"warnings\": %d, \"infos\": %d }\n\
        }\n"
       !errors !warnings !infos);
  Buffer.contents b

(* The deterministic aliasing-adversarial corpus `lint --all` sweeps in
   addition to the benchmark suite: the same generator mode as
   `ilp fuzz --alias-heavy`, at pinned seeds so CI output is stable. *)
let alias_corpus () =
  List.init 10 (fun k ->
      let st = Random.State.make [| 0x1197; 0xa11a; k |] in
      ( Printf.sprintf "alias-%02d" k,
        Ilp_lang.Gen_prog.render
          (Ilp_lang.Gen_prog.generate ~mode:`Alias_heavy st) ))

let lint_cmd =
  let module D = Ilp_analysis.Diagnostics in
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Lint every benchmark, plus a deterministic \
             aliasing-adversarial generated corpus, at every optimization \
             level and unroll factor; print error diagnostics (capped) \
             and a summary line per program.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit diagnostics as JSON (schema version 3) on stdout \
             instead of text: one result per linted configuration with \
             its pass, severity, check, location, copy count and \
             message, an unroll_stats object (loops rolled, peeled and \
             fully unrolled, plus a per-reason skip count that always \
             lists every reason), a sanitize object with the subscript \
             sanitizer's safe/oob/unknown verdict tally, plus a \
             severity summary.  The exit code still reflects \
             error-severity findings only.")
  in
  let bench_opt_arg =
    let doc = "Benchmark name (see `ilp list'); required without --all." in
    Arg.(
      value
      & opt (some string) None
      & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)
  in
  let severity_arg =
    let doc =
      "Lowest severity to report: error, warning or info.  The exit code \
       reflects error-severity findings only."
    in
    Arg.(
      value
      & opt severity_conv Ilp_analysis.Diagnostics.Warning
      & info [ "severity" ] ~docv:"LEVEL" ~doc)
  in
  let rank = function D.Error -> 0 | D.Warning -> 1 | D.Info -> 2 in
  let report ~threshold diags =
    let shown =
      List.filter (fun (_, d, _) -> rank d.D.severity <= rank threshold) diags
    in
    List.iter
      (fun (pass, d, copies) ->
        Fmt.pr "%s: %s%s@." pass (D.to_string d) (copies_suffix copies))
      shown;
    List.length shown
  in
  let pp_unroll_stats (st : Ilp_lang.Unroll.stats) =
    let skips =
      List.filter_map
        (fun r ->
          let n = Ilp_lang.Unroll.skip_count st r in
          if n = 0 then None
          else Some (Printf.sprintf "%s %d" (Ilp_lang.Unroll.skip_reason_name r) n))
        Ilp_lang.Unroll.all_skip_reasons
    in
    Printf.sprintf "%d rolled, %d peeled, %d fully unrolled%s"
      st.Ilp_lang.Unroll.rolled st.Ilp_lang.Unroll.peeled
      st.Ilp_lang.Unroll.full
      (if skips = [] then ""
       else "; skipped: " ^ String.concat ", " skips)
  in
  let file_arg =
    let doc =
      "Lint a MiniMod source file instead of a named benchmark.  \
       Mutually exclusive with -b and --all."
    in
    Arg.(
      value & opt (some string) None & info [ "file" ] ~docv:"PATH" ~doc)
  in
  let action all json bench file machine level factor careful peel threshold =
    let keep diags =
      List.filter (fun (_, d, _) -> rank d.D.severity <= rank threshold) diags
    in
    if all then begin
      let corpus = alias_corpus () in
      let targets =
        List.map
          (fun w ->
            (w.Ilp_workloads.Workload.name, w.Ilp_workloads.Workload.source))
          Ilp_workloads.Registry.all
        @ corpus
      in
      let results = ref [] in
      let errors = ref 0 in
      (* the dump of individual error diagnostics is capped; the
         nonzero-exit path always ends with a one-line summary count *)
      let dump_cap = 20 in
      let dumped = ref 0 in
      let suppressed = ref 0 in
      List.iter
        (fun (bname, source) ->
          let bench_errors = ref 0 in
          (* the sanitizer's verdicts depend only on the unrolled
             program, not the optimization level: one analysis per
             (factor, peel) serves all five levels *)
          let sanitize_memo = Hashtbl.create 4 in
          let sanitize_for unroll factor speel =
            match Hashtbl.find_opt sanitize_memo (factor, speel) with
            | Some r -> r
            | None ->
                let r = sanitize_report ?unroll source in
                Hashtbl.add sanitize_memo (factor, speel) r;
                r
          in
          List.iter
            (fun level ->
              List.iter
                (fun (factor, speel) ->
                  let unroll = unroll_spec factor false speel in
                  let scounts, sdiags = sanitize_for unroll factor speel in
                  let diags =
                    dedup_diags (lint_compile ?unroll ~level machine source)
                    @ sdiags
                  in
                  results :=
                    ( bname, machine.Ilp_machine.Config.name, level, factor,
                      false, speel, unroll_stats_for unroll source, scounts,
                      keep diags )
                    :: !results;
                  let errs =
                    List.filter (fun (_, d, _) -> D.is_error d) diags
                  in
                  bench_errors := !bench_errors + List.length errs;
                  if not json then
                    List.iter
                      (fun (pass, d, copies) ->
                        if !dumped < dump_cap then begin
                          incr dumped;
                          Fmt.pr "%s -O%d -u%d%s %s: %s%s@." bname
                            (Ilp_core.Ilp.level_rank level)
                            factor
                            (if speel then " --peel" else "")
                            pass (D.to_string d) (copies_suffix copies)
                        end
                        else incr suppressed)
                      errs)
                [ (1, false); (2, false); (4, false); (4, true) ])
            Ilp_core.Ilp.all_levels;
          errors := !errors + !bench_errors;
          if not json then
            Fmt.pr "lint %-10s %s: %s@." bname
              machine.Ilp_machine.Config.name
              (if !bench_errors = 0 then
                 "clean at every level and unroll factor"
               else Printf.sprintf "%d error(s)" !bench_errors))
        targets;
      if json then print_string (lint_json (List.rev !results));
      if !errors > 0 then begin
        if !suppressed > 0 then
          Fmt.pr "... %d more error(s) not shown@." !suppressed;
        Fmt.epr
          "lint: %d error(s) across %d benchmark(s) and %d generated \
           program(s)@."
          !errors
          (List.length Ilp_workloads.Registry.all)
          (List.length corpus);
        exit 1
      end
    end
    else
      let target =
        match (bench, file) with
        | Some _, Some _ ->
            Fmt.epr "-b and --file are mutually exclusive@.";
            exit 2
        | Some bench, None ->
            let w = find_bench bench in
            Some (bench, source_for w careful)
        | None, Some path -> (
            match In_channel.with_open_text path In_channel.input_all with
            | source -> Some (Filename.basename path, source)
            | exception Sys_error msg ->
                Fmt.epr "cannot read %s: %s@." path msg;
                exit 2)
        | None, None -> None
      in
      match target with
      | None ->
          Fmt.epr "specify a benchmark with -b, a --file, or use --all@.";
          exit 1
      | Some (bench, source) ->
          let unroll = unroll_spec factor careful peel in
          let stats = unroll_stats_for unroll source in
          let scounts, sdiags = sanitize_report ?unroll source in
          let diags =
            dedup_diags (lint_compile ?unroll ~level machine source) @ sdiags
          in
          let errors = List.filter (fun (_, d, _) -> D.is_error d) diags in
          if json then
            print_string
              (lint_json
                 [ ( bench, machine.Ilp_machine.Config.name, level, factor,
                     careful, peel, stats, scounts, keep diags ) ])
          else begin
            let shown = report ~threshold diags in
            if unroll <> None then
              Fmt.pr "unroll x%d: %s@." factor (pp_unroll_stats stats);
            let safe, oob, unknown = scounts in
            Fmt.pr "sanitize: %d subscript(s): %d proved safe, %d proved \
                    out-of-bounds, %d unknown@."
              (safe + oob + unknown) safe oob unknown;
            if shown = 0 then
              Fmt.pr "lint: %s at %s on %s: clean (nothing at or above %a)@."
                bench
                (Ilp_core.Ilp.opt_level_name level)
                machine.Ilp_machine.Config.name D.pp_severity threshold
          end;
          if errors <> [] then exit 1
  in
  let term =
    Term.(
      const action $ all_flag $ json_flag $ bench_opt_arg $ file_arg
      $ machine_arg $ level_arg $ unroll_arg $ careful_arg $ peel_arg
      $ severity_arg)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically check a compilation without executing it: IR \
          validation, dataflow lints (use-before-def, dead code, \
          unreachable blocks, redundant expressions), independent \
          register-allocation verification, and schedule legality")
    term

(* --- sanitize ----------------------------------------------------------- *)

(* The subscript sanitizer as its own entry point: no compilation, no
   execution — parse, type check, optionally unroll, then abstract
   interpretation and one verdict per array access.  Exit is nonzero
   exactly when some access is *proved* out of bounds; unknowns are
   reported but do not fail (a sound analysis on real programs always
   leaves some), making `ilp sanitize --all` a CI gate for the suite. *)
let sanitize_cmd =
  let module D = Ilp_analysis.Diagnostics in
  let all_flag =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Sanitize every benchmark (the paper's eight plus the \
             extras), unrolled as shipped and rolled, with a verdict \
             tally per program; exit nonzero if any access is proved \
             out of bounds.")
  in
  let bench_opt_arg =
    let doc = "Benchmark name (see `ilp list'); required without --all." in
    Arg.(
      value
      & opt (some string) None
      & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc)
  in
  let file_arg =
    let doc = "Sanitize a MiniMod source file instead of a benchmark." in
    Arg.(
      value & opt (some string) None & info [ "file" ] ~docv:"PATH" ~doc)
  in
  let tally name (safe, oob, unknown) =
    Fmt.pr "sanitize %-10s %3d subscript(s): %3d safe, %d oob, %3d unknown%s@."
      name (safe + oob + unknown) safe oob unknown
      (if oob > 0 then "  <-- PROVED OUT OF BOUNDS" else "")
  in
  let print_diags diags =
    List.iter
      (fun (pass, d, copies) ->
        Fmt.pr "%s: %s%s@." pass (D.to_string d) (copies_suffix copies))
      diags
  in
  let action all bench file factor careful peel =
    if all then begin
      let oob_total = ref 0 in
      List.iter
        (fun (w : Ilp_workloads.Workload.t) ->
          let specs =
            (* rolled, plus the workload's shipped unroll factor (the
               program the measured figures actually run) *)
            None
            ::
            (if w.Ilp_workloads.Workload.default_unroll > 1 then
               [ unroll_spec w.Ilp_workloads.Workload.default_unroll false
                   false ]
             else [])
          in
          List.iter
            (fun unroll ->
              let (safe, oob, unknown), diags =
                sanitize_report ?unroll w.Ilp_workloads.Workload.source
              in
              let suffix =
                match unroll with
                | None -> w.Ilp_workloads.Workload.name
                | Some { Ilp_core.Ilp.factor; _ } ->
                    Printf.sprintf "%s x%d" w.Ilp_workloads.Workload.name
                      factor
              in
              tally suffix (safe, oob, unknown);
              oob_total := !oob_total + oob;
              if oob > 0 then
                print_diags
                  (List.filter (fun (_, d, _) -> D.is_error d) diags))
            specs)
        (Ilp_workloads.Registry.all @ Ilp_workloads.Registry.extras);
      if !oob_total > 0 then begin
        Fmt.epr "sanitize: %d access(es) proved out of bounds@." !oob_total;
        exit 1
      end
    end
    else
      let target =
        match (bench, file) with
        | Some _, Some _ ->
            Fmt.epr "-b and --file are mutually exclusive@.";
            exit 2
        | Some bench, None ->
            let w = find_bench bench in
            Some (bench, source_for w careful)
        | None, Some path -> (
            match In_channel.with_open_text path In_channel.input_all with
            | source -> Some (Filename.basename path, source)
            | exception Sys_error msg ->
                Fmt.epr "cannot read %s: %s@." path msg;
                exit 2)
        | None, None -> None
      in
      match target with
      | None ->
          Fmt.epr "specify a benchmark with -b, a --file, or use --all@.";
          exit 1
      | Some (name, source) -> (
          let unroll = unroll_spec factor careful peel in
          match sanitize_report ?unroll source with
          | (safe, oob, unknown), diags ->
              print_diags diags;
              tally name (safe, oob, unknown);
              if oob > 0 then exit 1
          | exception Ilp_lang.Semant.Error (msg, _) ->
              Fmt.epr "sanitize: %s does not type check: %s@." name msg;
              exit 2)
  in
  let term =
    Term.(
      const action $ all_flag $ bench_opt_arg $ file_arg $ unroll_arg
      $ careful_arg $ peel_arg)
  in
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:
         "Statically classify every array access as proved in bounds, \
          proved out of bounds, or unknown, using value-range abstract \
          interpretation (intervals x congruences) over the whole \
          program; exits nonzero only on proved out-of-bounds accesses")
    term

(* --- disasm ------------------------------------------------------------- *)

let disasm_cmd =
  let fn_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "function" ] ~docv:"NAME"
          ~doc:"Only show this function.")
  in
  let action bench machine level factor careful peel fn =
    let w = find_bench bench in
    let unroll = unroll_spec factor careful peel in
    let p =
      Ilp_core.Ilp.compile ?unroll ~level machine (source_for w careful)
    in
    match fn with
    | None -> Fmt.pr "%a@." Ilp_ir.Program.pp p
    | Some name -> (
        match Ilp_ir.Program.find_function p name with
        | Some f -> Fmt.pr "%a@." Ilp_ir.Func.pp f
        | None ->
            Fmt.epr "no function %s@." name;
            exit 1)
  in
  let term =
    Term.(
      const action $ bench_arg $ machine_arg $ level_arg $ unroll_arg
      $ careful_arg $ peel_arg $ fn_arg)
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Dump the compiled IR of a benchmark") term

(* --- trace -------------------------------------------------------------- *)

(* [ilp trace] is a group: the default action shows the first N executed
   instructions (the historical behaviour), and the subcommands manage
   the persistent trace store. *)

let require_store dir =
  match dir with
  | Some dir -> Ilp_store.Store.open_root dir
  | None ->
      usage_error
        "no trace store; pass --store DIR or set ILP_TRACE_STORE"

let trace_show_term =
  let limit_arg =
    Arg.(
      value & opt int 80
      & info [ "n"; "limit" ] ~docv:"N" ~doc:"Instructions to show.")
  in
  let action bench machine level factor careful peel limit =
    let w = find_bench bench in
    let unroll = unroll_spec factor careful peel in
    let p =
      Ilp_core.Ilp.compile ?unroll ~level machine (source_for w careful)
    in
    let entries, outcome = Ilp_sim.Trace.capture ~limit p in
    print_string (Ilp_sim.Trace.render entries);
    Fmt.pr "... (%d instructions total, checksum %a)@."
      outcome.Ilp_sim.Exec.dyn_instrs Ilp_sim.Value.pp
      outcome.Ilp_sim.Exec.sink
  in
  Term.(
    const action $ bench_arg $ machine_arg $ level_arg $ unroll_arg
    $ careful_arg $ peel_arg $ limit_arg)

let trace_list_cmd =
  let action storedir =
    let s = require_store storedir in
    let entries = Ilp_store.Store.list s in
    if entries = [] then
      Fmt.pr "trace store %s is empty@." (Ilp_store.Store.root s)
    else begin
      let total = ref 0 in
      List.iter
        (fun (e : Ilp_store.Store.entry) ->
          total := !total + e.bytes;
          match e.info with
          | Ok (key, pk) ->
              let addrs =
                Array.fold_left
                  (fun acc (_, a) -> acc + Array.length a)
                  0 pk.Ilp_sim.Trace_buffer.p_addrs
              in
              let bits =
                Array.fold_left
                  (fun acc (_, b, _) -> acc + b)
                  0 pk.Ilp_sim.Trace_buffer.p_branches
              in
              Fmt.pr
                "%s  %9d bytes  %-32s %d dyn, %d mem stream(s) / %d \
                 address(es), %d branch stream(s) / %d taken bit(s)@."
                (Filename.basename e.file)
                e.bytes
                (Ilp_store.Codec.describe_key key)
                pk.Ilp_sim.Trace_buffer.p_dyn_instrs
                (Array.length pk.Ilp_sim.Trace_buffer.p_addrs)
                addrs
                (Array.length pk.Ilp_sim.Trace_buffer.p_branches)
                bits
          | Error msg ->
              Fmt.pr "%s  %9d bytes  BAD: %s@." (Filename.basename e.file)
                e.bytes msg)
        entries;
      Fmt.pr "%d file(s), %d bytes in %s@." (List.length entries) !total
        (Ilp_store.Store.root s)
    end
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:"List stored traces, newest first, with their footprints")
    Term.(const action $ store_arg)

let trace_verify_cmd =
  let action storedir =
    let s = require_store storedir in
    let results = Ilp_store.Store.verify s in
    let bad = ref 0 in
    List.iter
      (fun (file, r) ->
        match r with
        | Ok key ->
            Fmt.pr "%s  ok   %s@." file (Ilp_store.Codec.describe_key key)
        | Error msg ->
            incr bad;
            Fmt.pr "%s  BAD  %s@." file msg)
      results;
    if !bad > 0 then begin
      Fmt.epr "ilp trace verify: %d bad file(s) of %d@." !bad
        (List.length results);
      exit 1
    end
    else Fmt.pr "%d file(s) verified@." (List.length results)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Decode every stored trace (magic, version, CRC, structure) and \
          check each file name matches its content address")
    Term.(const action $ store_arg)

let trace_gc_cmd =
  let max_bytes_arg =
    let doc = "Evict least-recently-used traces until at most $(docv)." in
    Arg.(
      required
      & opt (some int) None
      & info [ "max-bytes" ] ~docv:"BYTES" ~doc)
  in
  let action storedir max_bytes =
    if max_bytes < 0 then usage_error "--max-bytes must be >= 0";
    let s = require_store storedir in
    let removed = Ilp_store.Store.gc s ~max_bytes in
    List.iter
      (fun (file, bytes) -> Fmt.pr "evicted %s (%d bytes)@." file bytes)
      removed;
    Fmt.pr "%d file(s) evicted@." (List.length removed)
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:"Shrink the store to a byte budget, evicting LRU first")
    Term.(const action $ store_arg $ max_bytes_arg)

let trace_clear_cmd =
  let action storedir =
    let s = require_store storedir in
    let n = Ilp_store.Store.clear s in
    Fmt.pr "removed %d file(s) from %s@." n (Ilp_store.Store.root s)
  in
  Cmd.v
    (Cmd.info "clear" ~doc:"Remove every stored trace (and stray temp file)")
    Term.(const action $ store_arg)

let trace_cmd =
  Cmd.group ~default:trace_show_term
    (Cmd.info "trace"
       ~doc:
         "Show the first N executed instructions, or manage the \
          persistent trace store (list, verify, gc, clear)")
    [ trace_list_cmd; trace_verify_cmd; trace_gc_cmd; trace_clear_cmd ]

(* --- profile ------------------------------------------------------------ *)

let profile_cmd =
  let action bench machine level factor careful peel =
    let w = find_bench bench in
    let unroll = unroll_spec factor careful peel in
    let p =
      Ilp_core.Ilp.compile ?unroll ~level machine (source_for w careful)
    in
    let timing = Ilp_sim.Timing.create machine in
    let outcome =
      Ilp_sim.Exec.run ~observer:(Ilp_sim.Timing.observer timing) p
    in
    Ilp_sim.Timing.finish timing;
    let total = float_of_int outcome.Ilp_sim.Exec.dyn_instrs in
    Fmt.pr "per-function dynamic instruction counts:@.";
    List.iter
      (fun (name, count) ->
        Fmt.pr "  %-16s %10d  (%.1f%%)@." name count
          (100.0 *. float_of_int count /. total))
      outcome.Ilp_sim.Exec.per_function;
    Fmt.pr "@.instruction-class mix:@.";
    Array.iteri
      (fun idx count ->
        if count > 0 then
          Fmt.pr "  %-10s %10d  (%.1f%%)@."
            (Ilp_ir.Iclass.name (Ilp_ir.Iclass.of_index idx))
            count
            (100.0 *. float_of_int count /. total))
      outcome.Ilp_sim.Exec.class_counts;
    Fmt.pr "@.issue-width histogram on %s:@." machine.Ilp_machine.Config.name;
    let cycles =
      float_of_int
        (Array.fold_left ( + ) 0 timing.Ilp_sim.Timing.issue_histogram)
    in
    Array.iteri
      (fun k count ->
        Fmt.pr "  %d/cycle  %10d  (%.1f%%)@." k count
          (100.0 *. float_of_int count /. cycles))
      timing.Ilp_sim.Timing.issue_histogram
  in
  let term =
    Term.(
      const action $ bench_arg $ machine_arg $ level_arg $ unroll_arg
      $ careful_arg $ peel_arg)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Per-function, per-class and per-cycle issue statistics")
    term

let main_cmd =
  let doc =
    "reproduction of Jouppi & Wall, Available Instruction-Level \
     Parallelism for Superscalar and Superpipelined Machines (ASPLOS 1989)"
  in
  Cmd.group (Cmd.info "ilp" ~doc)
    [ run_cmd; list_cmd; experiment_cmd; fuzz_cmd; lint_cmd; sanitize_cmd;
      disasm_cmd; trace_cmd; profile_cmd ]

let () = exit (Cmd.eval main_cmd)
